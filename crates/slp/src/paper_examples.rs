//! Worked examples transcribed from the paper, used as golden tests of the
//! IR, the semantics, and the cache model.
//!
//! Note on §6.4/§6.6: the author-version listings of the scheduled programs
//! `Q`, `Q_DFS`, `Q_greedy` overwrite the pebble that holds the goal `v4`
//! before `ret` (an erratum — the cost numbers are unaffected, the returned
//! *values* are not). We check the paper's cost numbers against the literal
//! listings here and check semantic correctness against the repaired
//! variants; the scheduler in `slp-optimizer` only ever emits repaired
//! programs.

use crate::cache::{ccap, iocost};
use crate::ir::{Instr, Slp};
use crate::term::Term::{Const, Var};
use crate::value::ValueSet;

// Constant indices for the §6 examples: A..G = 0..6.
const A: crate::term::Term = Const(0);
const B: crate::term::Term = Const(1);
const C: crate::term::Term = Const(2);
const D: crate::term::Term = Const(3);
const E: crate::term::Term = Const(4);
const F: crate::term::Term = Const(5);
const G: crate::term::Term = Const(6);

/// P_eg of §6.2 (v1..v5 = vars 0..4).
fn p_eg() -> Slp {
    Slp::new(
        7,
        vec![
            Instr::new(0, vec![A, B]),
            Instr::new(1, vec![C, D]),
            Instr::new(2, vec![Var(0), E, F]),
            Instr::new(3, vec![Var(2), G, A]),
            Instr::new(4, vec![Var(0), Var(2), Var(3)]),
        ],
        vec![Var(1), Var(3), Var(4)],
    )
    .unwrap()
}

/// The literal winning strategy Q of §6.4 (pebbles p1,p2,p3 = vars 0,1,2).
fn q_literal() -> Slp {
    Slp::new(
        7,
        vec![
            Instr::new(0, vec![B, A]),               // v1: p1 ← B⊕A
            Instr::new(1, vec![E, F, Var(0)]),       // v3: p2 ← ⊕(E,F,p1)
            Instr::new(2, vec![A, G, Var(1)]),       // v4: p3 ← ⊕(A,G,p2)
            Instr::new(0, vec![Var(0), Var(1), Var(2)]), // v5: p1 ← ⊕(p1,p2,p3)
            Instr::new(2, vec![C, D]),               // v2: p3 ← C⊕D  (erratum: clobbers v4)
        ],
        vec![Var(2), Var(1), Var(0)],
    )
    .unwrap()
}

/// Q with the erratum repaired: the last instruction reuses the dead pebble
/// p2 (v3 is no longer needed) instead of clobbering the goal v4.
fn q_repaired() -> Slp {
    Slp::new(
        7,
        vec![
            Instr::new(0, vec![B, A]),
            Instr::new(1, vec![E, F, Var(0)]),
            Instr::new(2, vec![A, G, Var(1)]),
            Instr::new(0, vec![Var(0), Var(1), Var(2)]),
            Instr::new(1, vec![C, D]), // v2: p2 ← C⊕D
        ],
        vec![Var(1), Var(2), Var(0)], // ret(v2, v4, v5)
    )
    .unwrap()
}

/// The literal Q_DFS of §6.6 (pebbles p1..p4 = vars 0..3).
fn q_dfs_literal() -> Slp {
    Slp::new(
        7,
        vec![
            Instr::new(0, vec![C, D]),               // v2: p1
            Instr::new(1, vec![A, B]),               // v1: p2
            Instr::new(2, vec![Var(1), E, F]),       // v3: p3
            Instr::new(3, vec![Var(2), A, G]),       // v4: p4
            Instr::new(3, vec![Var(1), Var(2), Var(3)]), // v5: p4 (erratum)
        ],
        vec![Var(0), Var(2), Var(3)],
    )
    .unwrap()
}

/// The literal Q_greedy of §6.6 (pebbles p1..p3 = vars 0..2).
fn q_greedy_literal() -> Slp {
    Slp::new(
        7,
        vec![
            Instr::new(0, vec![A, B]),               // v1: p1
            Instr::new(1, vec![Var(0), E, F]),       // v3: p2
            Instr::new(2, vec![Var(1), A, G]),       // v4: p3
            Instr::new(0, vec![Var(0), Var(1), Var(2)]), // v5: p1
            Instr::new(2, vec![C, D]),               // v2: p3 (erratum)
        ],
        vec![Var(2), Var(1), Var(0)],
    )
    .unwrap()
}

#[test]
fn q_scores_all_parameters_better_than_p_reg() {
    // §6.4: NVar(Q) = 3, CCap(Q) = 5, IOcost(Q, 8) = 9.
    let q = q_literal();
    assert_eq!(q.nvar(), 3);
    assert_eq!(ccap(&q), 5);
    assert_eq!(iocost(&q, 8), 9);
}

#[test]
fn repaired_q_keeps_the_costs_and_fixes_the_values() {
    let q = q_repaired();
    assert_eq!(q.nvar(), 3);
    assert_eq!(ccap(&q), 5);
    assert_eq!(iocost(&q, 8), 9);
    // ⟦Q⟧ must equal ⟦P_eg⟧ = (v2, v4, v5).
    assert_eq!(q.eval(), p_eg().eval());
    // …whereas the literal listing returns v3 in place of v4.
    assert_ne!(q_literal().eval(), p_eg().eval());
}

#[test]
fn q_dfs_scores() {
    // §6.6: NVar = 4, CCap = 7, IOcost(·, 8) = 10.
    let q = q_dfs_literal();
    assert_eq!(q.nvar(), 4);
    assert_eq!(ccap(&q), 7);
    assert_eq!(iocost(&q, 8), 10);
}

#[test]
fn q_greedy_scores() {
    // §6.6: NVar = 3, CCap = 7, IOcost(·, 8) = 9 — "NVar and IOcost are
    // optimal".
    let q = q_greedy_literal();
    assert_eq!(q.nvar(), 3);
    assert_eq!(ccap(&q), 7);
    assert_eq!(iocost(&q, 8), 9);
}

#[test]
fn section_2_1_pipeline_example() {
    // §2.1: P and its compressed / fused / scheduled forms are equivalent,
    // and the XOR count drops from 7 to 5.
    // consts a..g = 0..6; P: ν1 ← a⊕b; ν2 ← c⊕d⊕e⊕f; ν3 ← c⊕d⊕e⊕g.
    let p = Slp::new(
        7,
        vec![
            Instr::new(0, vec![Const(0), Const(1)]),
            Instr::new(1, vec![Const(2), Const(3), Const(4), Const(5)]),
            Instr::new(2, vec![Const(2), Const(3), Const(4), Const(6)]),
        ],
        vec![Var(0), Var(1), Var(2)],
    )
    .unwrap();
    assert_eq!(p.xor_count(), 7);

    // compressed: λ ← c⊕d⊕e (var 3), ν2 ← λ⊕f, ν3 ← λ⊕g.
    let comp = Slp::new(
        7,
        vec![
            Instr::new(3, vec![Const(2), Const(3)]),
            Instr::new(3, vec![Var(3), Const(4)]),
            Instr::new(0, vec![Const(0), Const(1)]),
            Instr::new(1, vec![Var(3), Const(5)]),
            Instr::new(2, vec![Var(3), Const(6)]),
        ],
        vec![Var(0), Var(1), Var(2)],
    )
    .unwrap();
    assert_eq!(comp.xor_count(), 5);
    assert_eq!(comp.eval(), p.eval());

    // fused: λ ← ⊕(c,d,e) in one instruction.
    let fused = Slp::new(
        7,
        vec![
            Instr::new(3, vec![Const(2), Const(3), Const(4)]),
            Instr::new(0, vec![Const(0), Const(1)]),
            Instr::new(1, vec![Var(3), Const(5)]),
            Instr::new(2, vec![Var(3), Const(6)]),
        ],
        vec![Var(0), Var(1), Var(2)],
    )
    .unwrap();
    assert_eq!(fused.xor_count(), 5);
    assert!(fused.mem_accesses() < comp.mem_accesses());
    assert_eq!(fused.eval(), p.eval());

    // scheduled: ν1 ← a⊕b; λ ← ⊕(c,d,e); ν2 ← λ⊕f; λ ← λ⊕g; ret(ν1,ν2,λ).
    let sched = Slp::new(
        7,
        vec![
            Instr::new(0, vec![Const(0), Const(1)]),
            Instr::new(3, vec![Const(2), Const(3), Const(4)]),
            Instr::new(1, vec![Var(3), Const(5)]),
            Instr::new(3, vec![Var(3), Const(6)]),
        ],
        vec![Var(0), Var(1), Var(3)],
    )
    .unwrap();
    assert_eq!(sched.eval(), p.eval());
    // scheduling reuses λ: one fewer distinct variable than the fused form.
    assert_eq!(sched.nvar(), fused.nvar() - 1);
}

#[test]
fn section_4_2_shortest_slp_example() {
    // §4.2: P0 (8 XORs), P1 (5), P2 (4, uses cancellation) are equivalent.
    let p0 = Slp::new(
        4,
        vec![
            Instr::new(0, vec![Const(0), Const(1)]),
            Instr::new(1, vec![Const(0), Const(1), Const(2)]),
            Instr::new(2, vec![Const(0), Const(1), Const(2), Const(3)]),
            Instr::new(3, vec![Const(1), Const(2), Const(3)]),
        ],
        vec![Var(0), Var(1), Var(2), Var(3)],
    )
    .unwrap();
    assert_eq!(p0.xor_count(), 8);

    let p1 = Slp::new(
        4,
        vec![
            Instr::new(0, vec![Const(0), Const(1)]),
            Instr::new(1, vec![Var(0), Const(2)]),
            Instr::new(2, vec![Var(1), Const(3)]),
            Instr::new(3, vec![Const(1), Const(2), Const(3)]),
        ],
        vec![Var(0), Var(1), Var(2), Var(3)],
    )
    .unwrap();
    assert_eq!(p1.xor_count(), 5);
    assert_eq!(p1.eval(), p0.eval());

    let p2 = Slp::new(
        4,
        vec![
            Instr::new(0, vec![Const(0), Const(1)]),
            Instr::new(1, vec![Var(0), Const(2)]),
            Instr::new(2, vec![Var(1), Const(3)]),
            Instr::new(3, vec![Var(2), Const(0)]), // v4 ← v3 ⊕ a (cancellation!)
        ],
        vec![Var(0), Var(1), Var(2), Var(3)],
    )
    .unwrap();
    assert_eq!(p2.xor_count(), 4);
    assert_eq!(p2.eval(), p0.eval());

    // the cancellation really is used: v3 ⊕ a = {a,b,c,d} ⊕ {a} = {b,c,d}.
    let v4 = &p2.eval()[3];
    assert_eq!(*v4, ValueSet::from_indices(4, [1, 2, 3]));
}
