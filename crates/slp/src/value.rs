//! The set-based value domain of §4.1: a value is a set of input constants,
//! and XOR is symmetric difference.

use std::fmt;

/// A set of constant indices, packed into `u64` words.
///
/// `ValueSet` is the semantic domain of SLP evaluation: the paper interprets
/// every variable as the set of inputs it XORs (`{a,b} ⊕ {a,c} = {b,c}`).
/// All optimizer passes are validated by comparing these sets before and
/// after transformation.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueSet {
    /// Number of addressable constants (fixed per program).
    universe: usize,
    words: Vec<u64>,
}

impl ValueSet {
    /// The empty set over a universe of `universe` constants.
    pub fn empty(universe: usize) -> Self {
        ValueSet {
            universe,
            words: vec![0; universe.div_ceil(64).max(1)],
        }
    }

    /// The singleton `{c}`.
    pub fn singleton(universe: usize, c: u32) -> Self {
        let mut s = ValueSet::empty(universe);
        s.toggle(c);
        s
    }

    /// Build from an iterator of constant indices (duplicates cancel, in
    /// keeping with the XOR semantics).
    pub fn from_indices(universe: usize, indices: impl IntoIterator<Item = u32>) -> Self {
        let mut s = ValueSet::empty(universe);
        for i in indices {
            s.toggle(i);
        }
        s
    }

    /// Size of the universe this set ranges over.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Flip membership of `c` (the primitive XOR step).
    #[inline]
    pub fn toggle(&mut self, c: u32) {
        let c = c as usize;
        assert!(c < self.universe, "constant {c} outside universe {}", self.universe);
        self.words[c / 64] ^= 1 << (c % 64);
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, c: u32) -> bool {
        let c = c as usize;
        c < self.universe && self.words[c / 64] >> (c % 64) & 1 == 1
    }

    /// In-place symmetric difference (`self ⊕= other`).
    #[inline]
    pub fn symdiff_assign(&mut self, other: &ValueSet) {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Symmetric difference (`self ⊕ other`).
    pub fn symdiff(&self, other: &ValueSet) -> ValueSet {
        let mut out = self.clone();
        out.symdiff_assign(other);
        out
    }

    /// Cardinality `|self|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Cardinality of `self ⊕ other` without materializing the result —
    /// the inner-loop operation of `Rebuild` (§4.4).
    #[inline]
    pub fn symdiff_len(&self, other: &ValueSet) -> usize {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// True iff the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Ascending iterator over the member indices.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    Some(wi as u32 * 64 + b)
                }
            })
        })
    }
}

impl fmt::Debug for ValueSet {
    /// Render `{a, c, d}` in the paper's notation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", crate::term::const_name(i))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_difference_cancels() {
        // {a,b} ⊕ {a,c} = {b,c} (§4.1).
        let u = 8;
        let ab = ValueSet::from_indices(u, [0, 1]);
        let ac = ValueSet::from_indices(u, [0, 2]);
        let bc = ValueSet::from_indices(u, [1, 2]);
        assert_eq!(ab.symdiff(&ac), bc);
    }

    #[test]
    fn disjoint_union() {
        // {a,b} ⊕ {c,d} = {a,b,c,d} (§4.1).
        let u = 8;
        let ab = ValueSet::from_indices(u, [0, 1]);
        let cd = ValueSet::from_indices(u, [2, 3]);
        assert_eq!(ab.symdiff(&cd), ValueSet::from_indices(u, [0, 1, 2, 3]));
    }

    #[test]
    fn duplicates_cancel_in_from_indices() {
        let s = ValueSet::from_indices(8, [1, 1, 2]);
        assert_eq!(s, ValueSet::singleton(8, 2));
    }

    #[test]
    fn symdiff_len_avoids_allocation() {
        let u = 130;
        let a = ValueSet::from_indices(u, [0, 64, 129]);
        let b = ValueSet::from_indices(u, [64, 100]);
        assert_eq!(a.symdiff_len(&b), a.symdiff(&b).len());
        assert_eq!(a.symdiff_len(&b), 3); // {0, 100, 129}: 64 cancels
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let s = ValueSet::from_indices(200, [0, 63, 64, 127, 128, 199]);
        let v: Vec<u32> = s.iter().collect();
        assert_eq!(v, vec![0, 63, 64, 127, 128, 199]);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn debug_formatting() {
        let s = ValueSet::from_indices(8, [0, 2, 3]);
        assert_eq!(format!("{s:?}"), "{a, c, d}");
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn toggle_out_of_range_panics() {
        let mut s = ValueSet::empty(4);
        s.toggle(4);
    }
}
