//! Straight-line programs (SLPs) with the XOR operator — the compiler IR at
//! the centre of the paper.
//!
//! An SLP is a program without branches, loops, or procedures (§4.1). Here
//! the single operator is XOR over byte arrays, so a program is a list of
//! instructions
//!
//! ```text
//! v ← ⊕(t1, t2, …, tk)        // terms are constants or variables
//! ret(g1, g2, …, gm)
//! ```
//!
//! Constants stand for the program's input arrays; variables for arrays
//! allocated at runtime. `SLP⊕` restricts every instruction to exactly two
//! arguments; `SLP®⊕` (produced by XOR fusion, §5) allows any arity. One IR
//! type, [`Slp`], covers both: `is_binary()` distinguishes them.
//!
//! The crate provides:
//!
//! * the IR itself ([`Slp`], [`Instr`], [`Term`]) with validation and
//!   pretty-printing in the paper's notation;
//! * the *set-based semantics* `⟦·⟦` of §4.1 ([`Slp::eval`]), where a value
//!   is the set of input constants it XORs, represented as a bitset
//!   ([`ValueSet`]);
//! * a byte-array *reference interpreter* ([`Slp::run_reference`]) used as a
//!   correctness oracle for the optimized runtime;
//! * the cost metrics `#⊕` (XOR count), `#M` (memory accesses, §5.1) and
//!   `NVar` (variable count);
//! * the abstract LRU cache of §6.2 with the two cache-efficiency measures
//!   `CCap` ([`cache::ccap`]) and `IOcost` ([`cache::iocost`]);
//! * builders that turn a parity [`BitMatrix`](bitmatrix::BitMatrix) into
//!   the unoptimized SLPs of §7.2 (binary-chain and flat forms).

mod build;
pub mod cache;
mod eval;
mod ir;
mod metrics;
mod pretty;
mod term;
mod value;

pub use build::{binary_slp_from_bitmatrix, flat_slp_from_bitmatrix};
pub use cache::{ccap, iocost, simulate, CacheSim, CacheStats};
pub use ir::{Instr, Slp, SlpError};
pub use term::Term;
pub use value::ValueSet;

#[cfg(test)]
mod paper_examples;
