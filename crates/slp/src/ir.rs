//! The SLP intermediate representation and structural utilities.

use crate::term::Term;
use crate::value::ValueSet;
use std::collections::HashMap;

/// One instruction `dst ← ⊕(args…)`.
///
/// Arity 1 is a copy (`dst ← t`), arity 2 the binary XOR of `SLP⊕`, arity
/// ≥ 3 a fused XOR of `SLP®⊕` (§5.1).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Instr {
    /// Destination variable index.
    pub dst: u32,
    /// Argument terms, evaluated left to right (the order matters for the
    /// cache model of §6.2, not for the value).
    pub args: Vec<Term>,
}

impl Instr {
    /// Convenience constructor.
    pub fn new(dst: u32, args: impl Into<Vec<Term>>) -> Self {
        Instr {
            dst,
            args: args.into(),
        }
    }

    /// Number of XOR operations this instruction performs (`arity - 1`).
    #[inline]
    pub fn xor_count(&self) -> usize {
        self.args.len().saturating_sub(1)
    }

    /// Number of memory accesses (§5.1): load every argument plus store the
    /// result (`arity + 1`).
    #[inline]
    pub fn mem_accesses(&self) -> usize {
        self.args.len() + 1
    }
}

/// Structural problems detected by [`Slp::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SlpError {
    /// An instruction has an empty argument list.
    EmptyArgs { instr: usize },
    /// A constant index is out of range.
    ConstOutOfRange { instr: Option<usize>, index: u32 },
    /// A variable is read before any assignment.
    UseBeforeDef { instr: Option<usize>, var: u32 },
    /// The return list is empty.
    NoOutputs,
}

impl std::fmt::Display for SlpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlpError::EmptyArgs { instr } => write!(f, "instruction {instr} has no arguments"),
            SlpError::ConstOutOfRange { instr, index } => match instr {
                Some(i) => write!(f, "instruction {i} references constant {index} out of range"),
                None => write!(f, "return list references constant {index} out of range"),
            },
            SlpError::UseBeforeDef { instr, var } => match instr {
                Some(i) => write!(f, "instruction {i} reads v{var} before definition"),
                None => write!(f, "return list reads v{var} before definition"),
            },
            SlpError::NoOutputs => write!(f, "program returns nothing"),
        }
    }
}

impl std::error::Error for SlpError {}

/// A straight-line program with XOR (§4.1): a tuple of variables, constants,
/// an instruction sequence, and the returned terms.
///
/// Variables may be assigned more than once (scheduled programs reuse
/// pebbles); [`Slp::is_ssa`] detects the single-assignment fragment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Slp {
    /// Number of input constants (indices `0..n_consts`).
    pub n_consts: usize,
    /// The program body.
    pub instrs: Vec<Instr>,
    /// The returned terms `ret(g1, …, gm)`.
    pub outputs: Vec<Term>,
}

impl Slp {
    /// Build and validate.
    pub fn new(n_consts: usize, instrs: Vec<Instr>, outputs: Vec<Term>) -> Result<Self, SlpError> {
        let slp = Slp {
            n_consts,
            instrs,
            outputs,
        };
        slp.validate()?;
        Ok(slp)
    }

    /// Check structural well-formedness: arguments exist, variables are
    /// defined before use, outputs are defined.
    pub fn validate(&self) -> Result<(), SlpError> {
        if self.outputs.is_empty() {
            return Err(SlpError::NoOutputs);
        }
        let mut defined = vec![false; self.n_vars()];
        for (i, instr) in self.instrs.iter().enumerate() {
            if instr.args.is_empty() {
                return Err(SlpError::EmptyArgs { instr: i });
            }
            for &t in &instr.args {
                match t {
                    Term::Const(c) if (c as usize) >= self.n_consts => {
                        return Err(SlpError::ConstOutOfRange {
                            instr: Some(i),
                            index: c,
                        })
                    }
                    Term::Var(v) if !defined.get(v as usize).copied().unwrap_or(false) => {
                        return Err(SlpError::UseBeforeDef {
                            instr: Some(i),
                            var: v,
                        })
                    }
                    _ => {}
                }
            }
            defined[instr.dst as usize] = true;
        }
        for &t in &self.outputs {
            match t {
                Term::Const(c) if (c as usize) >= self.n_consts => {
                    return Err(SlpError::ConstOutOfRange {
                        instr: None,
                        index: c,
                    })
                }
                Term::Var(v) if !defined.get(v as usize).copied().unwrap_or(false) => {
                    return Err(SlpError::UseBeforeDef { instr: None, var: v })
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Number of variable slots (one past the largest destination index).
    pub fn n_vars(&self) -> usize {
        self.instrs
            .iter()
            .map(|i| i.dst as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// `NVar`: the number of *distinct* variables (§4.1). For scheduled
    /// programs this is the pebble count.
    pub fn nvar(&self) -> usize {
        let mut seen = vec![false; self.n_vars()];
        let mut count = 0;
        for i in &self.instrs {
            if !seen[i.dst as usize] {
                seen[i.dst as usize] = true;
                count += 1;
            }
        }
        count
    }

    /// True iff every variable is assigned exactly once (SSA form, §6.3).
    pub fn is_ssa(&self) -> bool {
        let mut seen = vec![false; self.n_vars()];
        for i in &self.instrs {
            if seen[i.dst as usize] {
                return false;
            }
            seen[i.dst as usize] = true;
        }
        true
    }

    /// True iff every instruction has arity ≤ 2 (the `SLP⊕` fragment).
    pub fn is_binary(&self) -> bool {
        self.instrs.iter().all(|i| i.args.len() <= 2)
    }

    /// Rewrite into SSA by renaming every re-assignment to a fresh variable
    /// (§A.3 uses the same normalization). Semantics is preserved.
    pub fn to_ssa(&self) -> Slp {
        let mut current: HashMap<u32, u32> = HashMap::new();
        let mut instrs = Vec::with_capacity(self.instrs.len());
        for (fresh, instr) in self.instrs.iter().enumerate() {
            let args = instr
                .args
                .iter()
                .map(|&t| match t {
                    Term::Var(v) => Term::Var(current[&v]),
                    c => c,
                })
                .collect();
            current.insert(instr.dst, fresh as u32);
            instrs.push(Instr { dst: fresh as u32, args });
        }
        let outputs = self
            .outputs
            .iter()
            .map(|&t| match t {
                Term::Var(v) => Term::Var(current[&v]),
                c => c,
            })
            .collect();
        Slp {
            n_consts: self.n_consts,
            instrs,
            outputs,
        }
    }

    /// Flatten every output into a single variadic instruction over
    /// constants only, by unfolding variables through the set semantics.
    ///
    /// This is the normal form consumed by the RePair compressors: one
    /// "original variable" per output, each defined over constants.
    pub fn flatten(&self) -> Slp {
        let values = self.eval();
        let mut instrs = Vec::with_capacity(values.len());
        let mut outputs = Vec::with_capacity(values.len());
        for (k, val) in values.iter().enumerate() {
            assert!(
                !val.is_empty(),
                "output {k} evaluates to the empty set; cannot flatten"
            );
            let args: Vec<Term> = val.iter().map(Term::Const).collect();
            if args.len() == 1 {
                // A bare copy of an input: return the constant directly.
                outputs.push(args[0]);
            } else {
                let dst = instrs.len() as u32;
                instrs.push(Instr { dst, args });
                outputs.push(Term::Var(dst));
            }
        }
        // Renumber variables densely (some outputs may be constants).
        Slp {
            n_consts: self.n_consts,
            instrs,
            outputs,
        }
    }

    /// Remove instructions whose destination is never read afterwards and
    /// is not returned (dead-code elimination).
    ///
    /// Operates on SSA programs; call [`Slp::to_ssa`] first otherwise.
    pub fn eliminate_dead_code(&self) -> Slp {
        assert!(self.is_ssa(), "DCE requires SSA form");
        let n = self.instrs.len();
        let mut live = vec![false; self.n_vars()];
        for &t in &self.outputs {
            if let Term::Var(v) = t {
                live[v as usize] = true;
            }
        }
        // Sweep backwards: a live instruction keeps its arguments alive.
        let mut keep = vec![false; n];
        for (i, instr) in self.instrs.iter().enumerate().rev() {
            if live[instr.dst as usize] {
                keep[i] = true;
                for &t in &instr.args {
                    if let Term::Var(v) = t {
                        live[v as usize] = true;
                    }
                }
            }
        }
        // Compact variable numbering.
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let mut instrs = Vec::new();
        for (i, instr) in self.instrs.iter().enumerate() {
            if !keep[i] {
                continue;
            }
            let args = instr
                .args
                .iter()
                .map(|&t| match t {
                    Term::Var(v) => Term::Var(remap[&v]),
                    c => c,
                })
                .collect();
            let fresh = instrs.len() as u32;
            remap.insert(instr.dst, fresh);
            instrs.push(Instr { dst: fresh, args });
        }
        let outputs = self
            .outputs
            .iter()
            .map(|&t| match t {
                Term::Var(v) => Term::Var(remap[&v]),
                c => c,
            })
            .collect();
        Slp {
            n_consts: self.n_consts,
            instrs,
            outputs,
        }
    }

    /// Per-variable use counts (reads in argument positions only).
    pub fn use_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_vars()];
        for instr in &self.instrs {
            for &t in &instr.args {
                if let Term::Var(v) = t {
                    counts[v as usize] += 1;
                }
            }
        }
        counts
    }

    /// The multiset of returned values under the set semantics; two SLPs
    /// are *equivalent* (`⟦P⟧ = ⟦Q⟧`, §4.1) iff these agree positionally.
    pub fn eval(&self) -> Vec<ValueSet> {
        crate::eval::eval_outputs(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term::{Const, Var};

    /// The running example of §4.1.
    fn section_4_1_example() -> Slp {
        Slp::new(
            4,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]),           // v1 ← a⊕b
                Instr::new(1, vec![Const(1), Const(2), Const(3)]), // v2 ← b⊕c⊕d
                Instr::new(2, vec![Var(0), Var(1)]),               // v3 ← v1⊕v2
            ],
            vec![Var(1), Var(2), Var(0)],
        )
        .unwrap()
    }

    #[test]
    fn validation_accepts_paper_example() {
        let p = section_4_1_example();
        assert_eq!(p.n_vars(), 3);
        assert_eq!(p.nvar(), 3);
        assert!(p.is_ssa());
        assert!(!p.is_binary()); // v2 has arity 3
    }

    #[test]
    fn validation_rejects_use_before_def() {
        let err = Slp::new(2, vec![Instr::new(0, vec![Var(1), Const(0)])], vec![Var(0)])
            .unwrap_err();
        assert_eq!(err, SlpError::UseBeforeDef { instr: Some(0), var: 1 });
    }

    #[test]
    fn validation_rejects_const_out_of_range() {
        let err = Slp::new(1, vec![Instr::new(0, vec![Const(0), Const(1)])], vec![Var(0)])
            .unwrap_err();
        assert!(matches!(err, SlpError::ConstOutOfRange { index: 1, .. }));
    }

    #[test]
    fn validation_rejects_empty_program_parts() {
        let err = Slp::new(1, vec![], vec![]).unwrap_err();
        assert_eq!(err, SlpError::NoOutputs);
        let err = Slp::new(1, vec![Instr::new(0, vec![])], vec![Var(0)]).unwrap_err();
        assert_eq!(err, SlpError::EmptyArgs { instr: 0 });
    }

    #[test]
    fn ssa_conversion_renames_reassignments() {
        // λ ← c⊕d; λ ← λ⊕g (the scheduled example of §2.1 reuses λ).
        let p = Slp::new(
            7,
            vec![
                Instr::new(0, vec![Const(2), Const(3), Const(4)]),
                Instr::new(1, vec![Const(0), Const(1)]),
                Instr::new(2, vec![Var(0), Const(5)]),
                Instr::new(0, vec![Var(0), Const(6)]), // λ reused
            ],
            vec![Var(1), Var(2), Var(0)],
        )
        .unwrap();
        assert!(!p.is_ssa());
        let q = p.to_ssa();
        assert!(q.is_ssa());
        assert_eq!(p.eval(), q.eval());
        assert_eq!(q.nvar(), 4);
    }

    #[test]
    fn flatten_unfolds_to_constant_sets() {
        let p = section_4_1_example();
        let f = p.flatten();
        assert_eq!(p.eval(), f.eval());
        // every instruction of the flat form reads constants only
        assert!(f
            .instrs
            .iter()
            .all(|i| i.args.iter().all(|t| t.is_const())));
    }

    #[test]
    fn flatten_returns_constants_for_copies() {
        // v ← a; ret(v) flattens to ret(a) with no instructions.
        let p = Slp::new(2, vec![Instr::new(0, vec![Const(0)])], vec![Var(0)]).unwrap();
        let f = p.flatten();
        assert!(f.instrs.is_empty());
        assert_eq!(f.outputs, vec![Const(0)]);
        assert_eq!(p.eval(), f.eval());
    }

    #[test]
    fn dce_drops_unused_chains() {
        let p = Slp::new(
            3,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]), // used
                Instr::new(1, vec![Const(1), Const(2)]), // dead
                Instr::new(2, vec![Var(1), Const(0)]),   // dead (uses dead)
                Instr::new(3, vec![Var(0), Const(2)]),   // returned
            ],
            vec![Var(3)],
        )
        .unwrap();
        let q = p.eliminate_dead_code();
        assert_eq!(q.instrs.len(), 2);
        assert_eq!(p.eval(), q.eval());
        q.validate().unwrap();
    }

    #[test]
    fn use_counts_reads_only() {
        let p = section_4_1_example();
        assert_eq!(p.use_counts(), vec![1, 1, 0]);
    }
}
