//! The blocked SLP executor (§6.1): run a compiled program over byte
//! arrays, chunk by chunk, with no allocation in the hot loop.

use crate::arena::VarArena;
use crate::kernels::{xor_into, Kernel};
use slp::{Slp, Term};
use std::fmt;

/// A resolved operand: input array or variable buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    Input(u32),
    Var(u32),
}

thread_local! {
    /// Per-thread reusable pointer tables for [`ExecProgram::run_with_arena`]:
    /// resolved input bases, variable bases, and the per-instruction source
    /// list. Raw pointers never escape a single call; keeping the vectors
    /// thread-local (pool workers and inline callers alike) makes a
    /// steady-state run allocation-free.
    static PTR_SCRATCH: std::cell::RefCell<(Vec<*const u8>, Vec<*mut u8>, Vec<*const u8>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
}

#[derive(Clone, Debug)]
struct CompiledInstr {
    dst: u32,
    args: Vec<Slot>,
}

/// Runtime errors of the executor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// Wrong number of input arrays.
    InputCount { expected: usize, got: usize },
    /// Wrong number of output arrays.
    OutputCount { expected: usize, got: usize },
    /// Arrays have inconsistent lengths.
    LengthMismatch,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::InputCount { expected, got } => {
                write!(f, "expected {expected} input arrays, got {got}")
            }
            ExecError::OutputCount { expected, got } => {
                write!(f, "expected {expected} output arrays, got {got}")
            }
            ExecError::LengthMismatch => write!(f, "all arrays must have the same length"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A compiled SLP ready for repeated blocked execution.
///
/// Compilation resolves terms to slots, binds each returned variable to an
/// output buffer (so results are produced in place, without a final copy),
/// and fixes the blocking parameter `B` and the XOR [`Kernel`].
#[derive(Debug)]
pub struct ExecProgram {
    n_inputs: usize,
    n_vars: usize,
    blocksize: usize,
    kernel: Kernel,
    instrs: Vec<CompiledInstr>,
    outputs: Vec<Slot>,
    /// For each variable: the output slot whose buffer backs it, if any.
    var_out: Vec<Option<u32>>,
    max_arity: usize,
}

impl ExecProgram {
    /// Compile `slp` for the given blocksize and kernel.
    ///
    /// # Panics
    /// Panics if `blocksize == 0` or the SLP fails validation.
    pub fn compile(slp: &Slp, blocksize: usize, kernel: Kernel) -> ExecProgram {
        assert!(blocksize > 0, "blocksize must be positive");
        slp.validate().expect("cannot compile an ill-formed SLP");
        let n_vars = slp.n_vars();

        // Bind each returned variable to the *first* output slot returning
        // it; the variable's storage will be that caller-provided buffer.
        let mut var_out = vec![None; n_vars];
        for (i, &t) in slp.outputs.iter().enumerate() {
            if let Term::Var(v) = t {
                if var_out[v as usize].is_none() {
                    var_out[v as usize] = Some(i as u32);
                }
            }
        }

        let to_slot = |t: Term| match t {
            Term::Const(c) => Slot::Input(c),
            Term::Var(v) => Slot::Var(v),
        };
        let instrs: Vec<CompiledInstr> = slp
            .instrs
            .iter()
            .map(|i| CompiledInstr {
                dst: i.dst,
                args: i.args.iter().map(|&t| to_slot(t)).collect(),
            })
            .collect();
        let outputs: Vec<Slot> = slp.outputs.iter().map(|&t| to_slot(t)).collect();
        let max_arity = slp.max_arity();

        ExecProgram {
            n_inputs: slp.n_consts,
            n_vars,
            blocksize,
            kernel: kernel.resolve(),
            instrs,
            outputs,
            var_out,
            max_arity,
        }
    }

    /// Number of input arrays the program consumes.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of output arrays the program produces.
    pub fn n_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of variable buffers (the arena size requirement).
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// The blocking parameter `B`.
    pub fn blocksize(&self) -> usize {
        self.blocksize
    }

    /// The kernel in use (already resolved from `Auto`).
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Allocate an arena sized for this program and array length.
    pub fn make_arena(&self, array_len: usize) -> VarArena {
        VarArena::new(self.n_vars, array_len, self.blocksize)
    }

    /// Run with a caller-managed arena (the fast path — no allocation).
    ///
    /// `inputs[k]` is the array for constant `k`; `outputs[j]` receives the
    /// `j`-th returned value. All arrays must share one length. The arena
    /// is grown if it does not fit.
    pub fn run_with_arena(
        &self,
        inputs: &[&[u8]],
        outputs: &mut [&mut [u8]],
        arena: &mut VarArena,
    ) -> Result<(), ExecError> {
        if inputs.len() != self.n_inputs {
            return Err(ExecError::InputCount {
                expected: self.n_inputs,
                got: inputs.len(),
            });
        }
        if outputs.len() != self.outputs.len() {
            return Err(ExecError::OutputCount {
                expected: self.outputs.len(),
                got: outputs.len(),
            });
        }
        let len = inputs
            .first()
            .map(|a| a.len())
            .or_else(|| outputs.first().map(|a| a.len()))
            .unwrap_or(0);
        if inputs.iter().any(|a| a.len() != len)
            || outputs.iter().any(|a| a.len() != len)
        {
            return Err(ExecError::LengthMismatch);
        }
        if len == 0 {
            return Ok(());
        }
        if !arena.fits(self.n_vars, len, self.blocksize) {
            // Grow, never shrink: keep the larger of the old and new
            // requirements so a long-lived (e.g. pool-worker) arena
            // converges instead of thrashing between program shapes.
            *arena = VarArena::new(
                self.n_vars.max(arena.n_vars()),
                len.max(arena.array_len()),
                self.blocksize,
            );
        }

        // The pointer tables live in thread-local scratch (capacity
        // retained across calls) so repeated runs allocate nothing.
        PTR_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            let (input_ptrs, var_ptrs, srcs) = &mut *scratch;

            // Resolve every variable to its backing pointer: a caller
            // output buffer when the variable is returned, an arena strip
            // otherwise.
            var_ptrs.clear();
            var_ptrs.extend((0..self.n_vars).map(|v| match self.var_out[v] {
                Some(slot) => outputs[slot as usize].as_mut_ptr(),
                None => arena.var_ptr(v),
            }));
            input_ptrs.clear();
            input_ptrs.extend(inputs.iter().map(|a| a.as_ptr()));
            srcs.clear();
            srcs.reserve(self.max_arity);

            let resolve = |s: Slot, off: usize| -> *const u8 {
                // SAFETY: offsets stay within `len` by loop construction.
                match s {
                    Slot::Input(k) => unsafe { input_ptrs[k as usize].add(off) },
                    Slot::Var(v) => unsafe { var_ptrs[v as usize].add(off) as *const u8 },
                }
            };

            let mut start = 0;
            while start < len {
                let chunk = self.blocksize.min(len - start);
                for instr in &self.instrs {
                    srcs.clear();
                    for &a in &instr.args {
                        srcs.push(resolve(a, start));
                    }
                    // SAFETY: pointers valid for `chunk` bytes; destination
                    // may only alias a source exactly (pebble reuse), which
                    // the kernels support; buffers are otherwise disjoint
                    // (borrow rules for inputs/outputs, arena construction
                    // for vars).
                    unsafe {
                        xor_into(
                            self.kernel,
                            var_ptrs[instr.dst as usize].add(start),
                            srcs,
                            chunk,
                        )
                    };
                }
                start += chunk;
            }

            // Materialize outputs that are not backed in place: constants
            // and duplicate returns of one variable.
            for (j, &slot) in self.outputs.iter().enumerate() {
                match slot {
                    Slot::Input(k) => {
                        // SAFETY: input and output buffers cannot overlap
                        // (shared vs unique borrows), lengths match.
                        unsafe {
                            std::ptr::copy_nonoverlapping(
                                input_ptrs[k as usize],
                                outputs[j].as_mut_ptr(),
                                len,
                            )
                        };
                    }
                    Slot::Var(v) => {
                        let bound = self.var_out[v as usize].expect("returned var is bound");
                        if bound as usize != j {
                            // SAFETY: distinct output buffers are disjoint.
                            unsafe {
                                std::ptr::copy_nonoverlapping(
                                    var_ptrs[v as usize] as *const u8,
                                    outputs[j].as_mut_ptr(),
                                    len,
                                )
                            };
                        }
                    }
                }
            }
        });
        Ok(())
    }

    /// Convenience: run with a freshly allocated arena.
    pub fn run(&self, inputs: &[&[u8]], outputs: &mut [&mut [u8]]) -> Result<(), ExecError> {
        let len = inputs.first().map(|a| a.len()).unwrap_or(1);
        let mut arena = self.make_arena(len.max(1));
        self.run_with_arena(inputs, outputs, &mut arena)
    }

    /// Convenience: run and collect outputs into fresh vectors.
    pub fn run_to_vecs(&self, inputs: &[&[u8]]) -> Result<Vec<Vec<u8>>, ExecError> {
        let len = inputs.first().map(|a| a.len()).unwrap_or(0);
        let mut outs = vec![vec![0u8; len]; self.n_outputs()];
        {
            let mut refs: Vec<&mut [u8]> = outs.iter_mut().map(Vec::as_mut_slice).collect();
            self.run(inputs, &mut refs)?;
        }
        Ok(outs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp::Instr;
    use slp::Term::{Const, Var};

    fn kernels() -> Vec<Kernel> {
        crate::kernels::available_kernels()
    }

    fn inputs(n: usize, len: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|k| (0..len).map(|i| ((k * 37 + i * 11) % 256) as u8).collect())
            .collect()
    }

    /// The §4.1 example program, executed over bytes.
    fn section_4_1() -> Slp {
        Slp::new(
            4,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]),
                Instr::new(1, vec![Const(1), Const(2), Const(3)]),
                Instr::new(2, vec![Var(0), Var(1)]),
            ],
            vec![Var(1), Var(2), Var(0)],
        )
        .unwrap()
    }

    #[test]
    fn matches_reference_interpreter_on_all_kernels_and_blocksizes() {
        let p = section_4_1();
        let data = inputs(4, 1000); // not a multiple of any blocksize: tails!
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let expect = p.run_reference(&refs);
        for kernel in kernels() {
            for blocksize in [1usize, 7, 64, 256, 1000, 4096] {
                let prog = ExecProgram::compile(&p, blocksize, kernel);
                let got = prog.run_to_vecs(&refs).unwrap();
                assert_eq!(got, expect, "kernel {kernel:?} B={blocksize}");
            }
        }
    }

    #[test]
    fn pebble_reuse_program_runs_correctly() {
        // §2.1 scheduled form: λ is written twice and returned.
        let p = Slp::new(
            7,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]),
                Instr::new(3, vec![Const(2), Const(3), Const(4)]),
                Instr::new(1, vec![Var(3), Const(5)]),
                Instr::new(3, vec![Var(3), Const(6)]), // λ ← λ ⊕ g, in place
            ],
            vec![Var(0), Var(1), Var(3)],
        )
        .unwrap();
        let data = inputs(7, 513);
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let expect = p.run_reference(&refs);
        for kernel in kernels() {
            let prog = ExecProgram::compile(&p, 128, kernel);
            assert_eq!(prog.run_to_vecs(&refs).unwrap(), expect);
        }
    }

    #[test]
    fn outputs_are_produced_in_place() {
        // The returned variable must be backed by the caller's buffer;
        // check by running into pre-sized buffers.
        let p = section_4_1();
        let data = inputs(4, 64);
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let prog = ExecProgram::compile(&p, 32, Kernel::Wide64);
        let mut o1 = vec![0u8; 64];
        let mut o2 = vec![0u8; 64];
        let mut o3 = vec![0u8; 64];
        {
            let mut outs: Vec<&mut [u8]> = vec![&mut o1, &mut o2, &mut o3];
            prog.run(&refs, &mut outs).unwrap();
        }
        let expect = p.run_reference(&refs);
        assert_eq!(vec![o1, o2, o3], expect);
    }

    #[test]
    fn constant_outputs_are_copied() {
        let p = Slp::new(
            2,
            vec![Instr::new(0, vec![Const(0), Const(1)])],
            vec![Var(0), Const(1)],
        )
        .unwrap();
        let data = inputs(2, 100);
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let prog = ExecProgram::compile(&p, 64, Kernel::Wide64);
        let got = prog.run_to_vecs(&refs).unwrap();
        assert_eq!(got[1], data[1]);
    }

    #[test]
    fn duplicate_outputs_are_materialized() {
        let p = Slp::new(
            2,
            vec![Instr::new(0, vec![Const(0), Const(1)])],
            vec![Var(0), Var(0)],
        )
        .unwrap();
        let data = inputs(2, 80);
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let prog = ExecProgram::compile(&p, 64, Kernel::Scalar);
        let got = prog.run_to_vecs(&refs).unwrap();
        assert_eq!(got[0], got[1]);
        let expect: Vec<u8> = data[0].iter().zip(&data[1]).map(|(a, b)| a ^ b).collect();
        assert_eq!(got[0], expect);
    }

    #[test]
    fn arena_reuse_across_runs() {
        let p = section_4_1();
        let prog = ExecProgram::compile(&p, 64, Kernel::Wide64);
        let mut arena = prog.make_arena(256);
        for round in 0..3 {
            let data = inputs(4, 256)
                .into_iter()
                .map(|mut v| {
                    v.iter_mut().for_each(|b| *b = b.wrapping_add(round));
                    v
                })
                .collect::<Vec<_>>();
            let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
            let mut outs = vec![vec![0u8; 256]; 3];
            {
                let mut orefs: Vec<&mut [u8]> = outs.iter_mut().map(Vec::as_mut_slice).collect();
                prog.run_with_arena(&refs, &mut orefs, &mut arena).unwrap();
            }
            assert_eq!(outs, p.run_reference(&refs), "round {round}");
        }
    }

    #[test]
    fn error_paths() {
        let p = section_4_1();
        let prog = ExecProgram::compile(&p, 64, Kernel::Scalar);
        let a = vec![0u8; 8];
        let refs: Vec<&[u8]> = vec![&a; 3]; // one input short
        let mut outs = vec![vec![0u8; 8]; 3];
        let mut orefs: Vec<&mut [u8]> = outs.iter_mut().map(Vec::as_mut_slice).collect();
        assert_eq!(
            prog.run(&refs, &mut orefs),
            Err(ExecError::InputCount { expected: 4, got: 3 })
        );

        let refs: Vec<&[u8]> = vec![&a; 4];
        let mut short = vec![vec![0u8; 4]; 3];
        let mut orefs: Vec<&mut [u8]> = short.iter_mut().map(Vec::as_mut_slice).collect();
        assert_eq!(prog.run(&refs, &mut orefs), Err(ExecError::LengthMismatch));

        let mut two = vec![vec![0u8; 8]; 2];
        let mut orefs: Vec<&mut [u8]> = two.iter_mut().map(Vec::as_mut_slice).collect();
        assert_eq!(
            prog.run(&refs, &mut orefs),
            Err(ExecError::OutputCount { expected: 3, got: 2 })
        );
    }

    #[test]
    fn empty_arrays_are_a_noop() {
        let p = section_4_1();
        let prog = ExecProgram::compile(&p, 64, Kernel::Scalar);
        let refs: Vec<&[u8]> = vec![&[]; 4];
        let mut outs: Vec<Vec<u8>> = vec![vec![]; 3];
        let mut orefs: Vec<&mut [u8]> = outs.iter_mut().map(Vec::as_mut_slice).collect();
        assert_eq!(prog.run(&refs, &mut orefs), Ok(()));
    }

    #[test]
    fn optimized_pipeline_output_executes_identically() {
        // End-to-end within the runtime: a scheduled, fused, compressed
        // program from a bit-matrix runs identically to the base program.
        let m = bitmatrix::BitMatrix::parse(&[
            "11110000",
            "00111100",
            "00001111",
            "11001100",
        ]);
        let base = slp::binary_slp_from_bitmatrix(&m);
        let opt = slp_optimizer::optimize(&base, slp_optimizer::OptConfig::FULL_DFS);
        let data = inputs(8, 3 * 64 + 17);
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let expect = base.run_reference(&refs);
        for kernel in kernels() {
            let prog = ExecProgram::compile(&opt, 64, kernel);
            assert_eq!(prog.run_to_vecs(&refs).unwrap(), expect);
        }
    }
}
