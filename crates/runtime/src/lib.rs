//! The execution backend: SIMD XOR kernels, cache-conflict-aware buffer
//! arenas, and the blocked interpreter that runs optimized SLPs over real
//! byte arrays.
//!
//! The paper executes optimized SLPs "line-by-line in the host language in
//! the interpreter style" (§2) with the *blocking* technique of §6.1:
//! every array is processed in `B`-byte chunks so that the working set of
//! one chunk iteration fits in L1. Three ingredients matter for speed:
//!
//! * [`Kernel`] — how one `dst ← ⊕(s1, …, sk)` over a chunk is computed:
//!   byte-wise (`xor1` of §7.2), `u64`-wide, 32-byte AVX2 (`xor32`),
//!   64-byte AVX-512 (`xor64`) or 16-byte NEON (`xor16`), feature-detected
//!   at runtime and interchangeable byte-for-byte;
//! * [`VarArena`] — variable buffers allocated so that
//!   `A(v_i) ≡ i·B (mod 4096)`, the anti-conflict staggering of §7.4 that
//!   keeps blocks from colliding in L1 cache sets;
//! * [`ExecProgram`] — a compiled SLP: slot-resolved instructions run for
//!   every chunk index over input, variable, and output buffers without
//!   any per-run allocation.

//!
//! Parallelism is a first-class subsystem: [`ExecPool`] keeps a
//! persistent set of workers (one grow-on-demand [`VarArena`] each) and
//! [`plan_stripes`] splits any byte range into blocksize-aligned stripes,
//! so [`ExecProgram::run_striped`] executes one program across all cores
//! with zero steady-state allocation. Codecs reach all of this through
//! the [`ComputeBackend`] trait — the seam at the compiled-program
//! boundary that a non-CPU executor would implement; [`CpuBackend`] is
//! the striped-pool implementation everything uses today.

mod arena;
mod backend;
mod exec;
mod kernels;
mod partition;
mod pool;

pub use arena::{with_byte_scratch, with_ref_scratch, AlignedBuf, StripedBuf, VarArena, CACHE_PAGE};
pub use backend::{cpu_backend, ComputeBackend, CpuBackend};
pub use exec::{ExecError, ExecProgram};
pub use kernels::{available_kernels, xor_accumulate, xor_into, xor_slices, Kernel};
pub use partition::{plan_stripes, StripePlan};
pub use pool::{
    default_parallelism, env_blocksize, env_parallelism, lock_unpoisoned, ExecPool, PoolChoice,
    ScopedTask,
};
