//! Striped partitioning: split a byte range into cache-friendly stripes
//! aligned to a program's compiled blocksize and run the program across
//! an [`ExecPool`].
//!
//! Because every XOR instruction is element-wise, splitting all packets
//! of a stripe at the *same* offsets and executing each slice
//! independently is exact (§6). The planner picks the stripe count from
//! the total byte range and the blocking parameter `B`: a stripe is never
//! smaller than one `B`-block, so short shards simply run as one stripe
//! instead of degenerating to per-byte splits, and stripe boundaries are
//! `B`-aligned so each worker's blocked loop sees no mid-block seams.

use crate::arena::{with_byte_scratch, VarArena};
use crate::exec::{ExecError, ExecProgram};
use crate::kernels::{xor_accumulate, xor_slices};
use crate::pool::{lock_unpoisoned, ExecPool, ScopedTask};
use std::cell::RefCell;
use std::ops::Range;
use std::sync::Mutex;

thread_local! {
    /// The calling thread's own grow-on-demand arena, used when a plan
    /// collapses to a single stripe: running inline skips the pool
    /// handoff (two context switches) that multi-megabyte stripes
    /// amortize but short shards and `parallelism = 1` codecs would not.
    static CALLER_ARENA: RefCell<VarArena> = RefCell::new(VarArena::new(1, 1, 1024));
}

/// How a packet range is split into stripes.
///
/// Built by [`plan_stripes`]; the ranges are contiguous, disjoint,
/// blocksize-aligned (except the final tail) and cover `0..packet_len`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StripePlan {
    ranges: Vec<Range<usize>>,
}

impl StripePlan {
    /// Number of stripes.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True iff the plan has no stripes (zero-length range).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The planned byte ranges.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }
}

/// Plan stripes for a `packet_len`-byte range processed in `blocksize`
/// blocks by at most `max_stripes` workers.
///
/// The stripe count is chosen from the total bytes and the blocksize:
/// `min(max_stripes, ceil(packet_len / blocksize))`, i.e. every stripe
/// holds at least one block and block boundaries are respected, with the
/// remainder blocks spread over the leading stripes.
pub fn plan_stripes(packet_len: usize, blocksize: usize, max_stripes: usize) -> StripePlan {
    if packet_len == 0 {
        return StripePlan { ranges: Vec::new() };
    }
    let blocksize = blocksize.max(1);
    let blocks = packet_len.div_ceil(blocksize);
    let stripes = max_stripes.max(1).min(blocks);
    let per = blocks / stripes;
    let extra = blocks % stripes;
    let mut ranges = Vec::with_capacity(stripes);
    let mut block = 0;
    for s in 0..stripes {
        let take = per + usize::from(s < extra);
        let lo = block * blocksize;
        block += take;
        let hi = (block * blocksize).min(packet_len);
        ranges.push(lo..hi);
    }
    StripePlan { ranges }
}

impl ExecProgram {
    /// Run the program striped across a worker pool: the packet range is
    /// split by [`plan_stripes`] (with this program's blocksize) into at
    /// most `max_stripes` blocksize-aligned stripes, each executed on a
    /// pool worker with its persistent arena.
    ///
    /// Semantically identical to [`ExecProgram::run_with_arena`]; any
    /// split is exact because all instructions are element-wise.
    pub fn run_striped(
        &self,
        inputs: &[&[u8]],
        outputs: &mut [&mut [u8]],
        pool: &ExecPool,
        max_stripes: usize,
    ) -> Result<(), ExecError> {
        // Validate shapes up front so errors surface before any task is
        // submitted (stripe slices inherit validity from the full run).
        if inputs.len() != self.n_inputs() {
            return Err(ExecError::InputCount {
                expected: self.n_inputs(),
                got: inputs.len(),
            });
        }
        if outputs.len() != self.n_outputs() {
            return Err(ExecError::OutputCount {
                expected: self.n_outputs(),
                got: outputs.len(),
            });
        }
        let len = inputs
            .first()
            .map(|a| a.len())
            .or_else(|| outputs.first().map(|a| a.len()))
            .unwrap_or(0);
        if inputs.iter().any(|a| a.len() != len)
            || outputs.iter().any(|a| a.len() != len)
        {
            return Err(ExecError::LengthMismatch);
        }

        if len == 0 {
            return Ok(());
        }
        // Serial fast path, decided without materializing a plan (keeps
        // the single-stripe case — short shards, `parallelism = 1` —
        // allocation-free): run inline on the caller with its
        // thread-local arena, same per-worker-arena guarantees, no pool
        // handoff.
        let blocks = len.div_ceil(self.blocksize().max(1));
        if max_stripes.max(1).min(blocks) == 1 {
            return CALLER_ARENA
                .with(|a| self.run_with_arena(inputs, outputs, &mut a.borrow_mut()));
        }
        let plan = plan_stripes(len, self.blocksize(), max_stripes);

        // Split every packet at the same offsets. Outputs are peeled off
        // front-to-back with split_at_mut so each stripe owns its slices.
        let failure: Mutex<Option<ExecError>> = Mutex::new(None);
        let mut tasks: Vec<ScopedTask<'_>> = Vec::with_capacity(plan.len());
        let mut outs: Vec<&mut [u8]> = outputs.iter_mut().map(|s| &mut **s).collect();
        for r in plan.ranges() {
            let ins: Vec<&[u8]> = inputs.iter().map(|s| &s[r.clone()]).collect();
            let width = r.end - r.start;
            let mut rest = Vec::with_capacity(outs.len());
            let mut part = Vec::with_capacity(outs.len());
            for o in outs {
                let (head, tail) = o.split_at_mut(width);
                part.push(head);
                rest.push(tail);
            }
            outs = rest;
            let failure = &failure;
            tasks.push(Box::new(move |arena| {
                if let Err(e) = self.run_with_arena(&ins, &mut part, arena) {
                    *lock_unpoisoned(failure) = Some(e);
                }
            }));
        }
        pool.run_scoped(tasks);
        match failure.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner) {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The delta-update execution discipline shared by the codecs: run
    /// this program over `old ⊕ new` (each shard split into `pps` equal
    /// packets) and XOR its outputs into `shards` in place.
    ///
    /// Everything transient — the delta shard and the program outputs —
    /// lives in the calling thread's persistent byte scratch, so a
    /// steady-state update allocates nothing and memsets nothing (the
    /// program overwrites its outputs in full before they are read).
    ///
    /// The caller has already validated shapes: `old`, `new` and every
    /// shard share one length, a positive multiple of `pps`, and the
    /// packet counts match the program (`pps` inputs, `shards.len() ×
    /// pps` outputs).
    pub fn run_delta_striped(
        &self,
        pps: usize,
        old: &[u8],
        new: &[u8],
        shards: &mut [&mut [u8]],
        pool: &ExecPool,
        max_stripes: usize,
    ) -> Result<(), ExecError> {
        let len = old.len();
        if len == 0 {
            return Ok(());
        }
        let pl = len / pps;
        with_byte_scratch((shards.len() + 1) * len, |scratch| {
            let (delta, dp) = scratch.split_at_mut(len);
            xor_slices(self.kernel(), delta, &[old, new]);
            {
                let inputs: Vec<&[u8]> = delta.chunks_exact(pl).collect();
                let mut outputs: Vec<&mut [u8]> = dp
                    .chunks_exact_mut(len)
                    .flat_map(|s| s.chunks_exact_mut(pl))
                    .collect();
                self.run_striped(&inputs, &mut outputs, pool, max_stripes)?;
            }
            for (shard, d) in shards.iter_mut().zip(dp.chunks_exact(len)) {
                xor_accumulate(self.kernel(), shard, d);
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Kernel;
    use slp::Term::{Const, Var};
    use slp::{Instr, Slp};

    fn cover(plan: &StripePlan, len: usize) {
        let mut at = 0;
        for r in plan.ranges() {
            assert_eq!(r.start, at, "stripes must be contiguous");
            assert!(r.end > r.start, "stripes must be non-empty");
            at = r.end;
        }
        assert_eq!(at, len, "stripes must cover the range");
    }

    #[test]
    fn short_shards_get_one_stripe_not_zero_parallelism() {
        // A packet shorter than one block must not be split (the old
        // thread clamp used raw byte counts instead); one stripe, full
        // coverage, regardless of how many workers are offered.
        for len in [1usize, 8, 100, 1023] {
            let plan = plan_stripes(len, 1024, 8);
            assert_eq!(plan.len(), 1, "len {len}");
            cover(&plan, len);
        }
    }

    #[test]
    fn stripe_count_follows_blocks_not_workers() {
        // 4 blocks, 8 workers → 4 stripes; 100 blocks, 8 workers → 8.
        let plan = plan_stripes(4 * 1024, 1024, 8);
        assert_eq!(plan.len(), 4);
        cover(&plan, 4 * 1024);
        let plan = plan_stripes(100 * 1024, 1024, 8);
        assert_eq!(plan.len(), 8);
        cover(&plan, 100 * 1024);
    }

    #[test]
    fn stripe_boundaries_are_block_aligned() {
        let plan = plan_stripes(10 * 512 + 37, 512, 3);
        cover(&plan, 10 * 512 + 37);
        for r in &plan.ranges()[..plan.len() - 1] {
            assert_eq!(r.end % 512, 0, "interior boundary not aligned");
        }
    }

    #[test]
    fn remainder_blocks_spread_over_leading_stripes() {
        // 7 blocks over 3 stripes → 3 + 2 + 2 blocks.
        let plan = plan_stripes(7 * 64, 64, 3);
        let widths: Vec<usize> = plan.ranges().iter().map(|r| r.end - r.start).collect();
        assert_eq!(widths, vec![3 * 64, 2 * 64, 2 * 64]);
    }

    #[test]
    fn zero_length_plans_nothing() {
        assert!(plan_stripes(0, 1024, 4).is_empty());
    }

    fn section_4_1() -> Slp {
        Slp::new(
            4,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]),
                Instr::new(1, vec![Const(1), Const(2), Const(3)]),
                Instr::new(2, vec![Var(0), Var(1)]),
            ],
            vec![Var(1), Var(2), Var(0)],
        )
        .unwrap()
    }

    #[test]
    fn striped_run_matches_reference_across_shapes() {
        let p = section_4_1();
        let pool = ExecPool::new(3);
        // Lengths below, at, and far above one block; odd tails.
        for len in [1usize, 63, 64, 65, 1000, 64 * 7 + 13] {
            let data: Vec<Vec<u8>> = (0..4)
                .map(|k| (0..len).map(|i| ((k * 37 + i * 11) % 256) as u8).collect())
                .collect();
            let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
            let expect = p.run_reference(&refs);
            let prog = ExecProgram::compile(&p, 64, Kernel::Auto);
            let mut outs = vec![vec![0u8; len]; 3];
            {
                let mut orefs: Vec<&mut [u8]> =
                    outs.iter_mut().map(Vec::as_mut_slice).collect();
                prog.run_striped(&refs, &mut orefs, &pool, pool.workers())
                    .unwrap();
            }
            assert_eq!(outs, expect, "len {len}");
        }
    }

    #[test]
    fn striped_run_validates_shapes_before_spawning() {
        let p = section_4_1();
        let prog = ExecProgram::compile(&p, 64, Kernel::Scalar);
        let pool = ExecPool::new(2);
        let a = vec![0u8; 8];
        let refs: Vec<&[u8]> = vec![&a; 3]; // one input short
        let mut outs = vec![vec![0u8; 8]; 3];
        let mut orefs: Vec<&mut [u8]> = outs.iter_mut().map(Vec::as_mut_slice).collect();
        assert_eq!(
            prog.run_striped(&refs, &mut orefs, &pool, 2),
            Err(ExecError::InputCount { expected: 4, got: 3 })
        );
        let refs: Vec<&[u8]> = vec![&a; 4];
        let mut short = vec![vec![0u8; 4]; 3];
        let mut orefs: Vec<&mut [u8]> = short.iter_mut().map(Vec::as_mut_slice).collect();
        assert_eq!(
            prog.run_striped(&refs, &mut orefs, &pool, 2),
            Err(ExecError::LengthMismatch)
        );
    }

    #[test]
    fn striped_empty_arrays_are_a_noop() {
        let p = section_4_1();
        let prog = ExecProgram::compile(&p, 64, Kernel::Scalar);
        let pool = ExecPool::new(2);
        let refs: Vec<&[u8]> = vec![&[]; 4];
        let mut outs: Vec<Vec<u8>> = vec![vec![]; 3];
        let mut orefs: Vec<&mut [u8]> = outs.iter_mut().map(Vec::as_mut_slice).collect();
        assert_eq!(prog.run_striped(&refs, &mut orefs, &pool, 2), Ok(()));
    }

    #[test]
    fn striped_run_on_global_pool() {
        let p = section_4_1();
        let prog = ExecProgram::compile(&p, 128, Kernel::Auto);
        let data: Vec<Vec<u8>> = (0..4).map(|k| vec![k as u8 + 1; 4096]).collect();
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let expect = p.run_reference(&refs);
        let mut outs = vec![vec![0u8; 4096]; 3];
        {
            let mut orefs: Vec<&mut [u8]> = outs.iter_mut().map(Vec::as_mut_slice).collect();
            let pool = ExecPool::global();
            prog.run_striped(&refs, &mut orefs, pool, pool.workers()).unwrap();
        }
        assert_eq!(outs, expect);
    }
}
