//! The parallel execution engine's worker pool.
//!
//! Every instruction of a compiled XOR program is element-wise, so any
//! byte range of a stripe can be executed independently (§6). The
//! [`ExecPool`] makes that a first-class runtime facility: a persistent
//! set of worker threads, each owning a reusable grow-on-demand
//! [`VarArena`], so steady-state encode/decode does **zero hot-path
//! allocation** and concurrent callers never contend on a shared arena.
//!
//! Use [`ExecPool::global`] for the lazily-created machine-sized pool, or
//! [`ExecPool::new`] for an explicitly sized one. Work is submitted in
//! *scopes*: [`ExecPool::run_scoped`] blocks until every submitted task
//! has finished, which is what lets tasks borrow the caller's stack
//! (input/output shard slices) without `'static` bounds.

use crate::arena::VarArena;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// A task executed on a worker: it receives the worker's persistent
/// arena. The lifetime `'scope` is the borrow of the submitting call
/// frame; [`ExecPool::run_scoped`] blocks until the task completes, so
/// the borrow never escapes.
pub type ScopedTask<'scope> = Box<dyn FnOnce(&mut VarArena) + Send + 'scope>;

type StaticTask = Box<dyn FnOnce(&mut VarArena) + Send + 'static>;

/// Lock a mutex, recovering the guard from a poisoned lock.
///
/// Shared by the pool, the partitioner and the codecs above them: their
/// guarded state (queues, latches, program caches) stays internally
/// consistent even if a holder panicked mid-operation, so poisoning must
/// not wedge a long-lived shared structure permanently.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

use self::lock_unpoisoned as lock;

struct Queue {
    tasks: VecDeque<StaticTask>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    work_ready: Condvar,
}

/// One scope's completion latch: how many tasks are still running, and
/// whether any of them panicked.
struct Latch {
    state: Mutex<(usize, bool)>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Arc<Latch> {
        Arc::new(Latch {
            state: Mutex::new((count, false)),
            done: Condvar::new(),
        })
    }

    fn complete_one(&self, panicked: bool) {
        let mut s = lock(&self.state);
        s.0 -= 1;
        s.1 |= panicked;
        if s.0 == 0 {
            self.done.notify_all();
        }
    }

    /// Block until every task completed; returns true if any panicked.
    fn wait(&self) -> bool {
        let mut s = lock(&self.state);
        while s.0 > 0 {
            s = self
                .done
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        s.1
    }
}

/// A persistent pool of worker threads for striped XOR-program execution.
///
/// Each worker owns one grow-on-demand [`VarArena`] that is reused across
/// every task it runs, so repeated encode/decode calls allocate nothing
/// once the arena has grown to the working-set size.
///
/// ```
/// use slp::{Instr, Slp, Term::{Const, Var}};
/// use xor_runtime::{ExecPool, ExecProgram, Kernel};
///
/// // p0 = in0 ^ in1, returned — the smallest useful XOR program.
/// let slp = Slp::new(
///     2,
///     vec![Instr::new(0, vec![Const(0), Const(1)])],
///     vec![Var(0)],
/// )
/// .unwrap();
/// let prog = ExecProgram::compile(&slp, 1024, Kernel::Auto);
///
/// let a = vec![0xAAu8; 8192];
/// let b = vec![0x0Fu8; 8192];
/// let mut out = vec![0u8; 8192];
///
/// // Run striped across an explicitly sized pool.
/// let pool = ExecPool::new(2);
/// prog.run_striped(&[&a, &b], &mut [&mut out], &pool, pool.workers())
///     .unwrap();
/// assert!(out.iter().all(|&x| x == 0xAA ^ 0x0F));
/// ```
pub struct ExecPool {
    shared: Arc<Shared>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl ExecPool {
    /// Spawn a pool with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> ExecPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                thread::Builder::new()
                    .name(format!("xor-exec-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning pool worker")
            })
            .collect();
        ExecPool { shared, handles }
    }

    /// The shared machine-sized pool, created lazily on first use and
    /// sized from [`std::thread::available_parallelism`].
    pub fn global() -> &'static ExecPool {
        static GLOBAL: OnceLock<ExecPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ExecPool::new(default_parallelism()))
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Run a batch of borrowed tasks to completion.
    ///
    /// Blocks until every task has finished (this is what makes the
    /// non-`'static` borrows sound: no task can outlive this call).
    ///
    /// # Panics
    /// Panics if any task panicked on a worker.
    pub fn run_scoped<'scope>(&self, tasks: Vec<ScopedTask<'scope>>) {
        if tasks.is_empty() {
            return;
        }
        let latch = Latch::new(tasks.len());
        {
            let mut q = lock(&self.shared.queue);
            for task in tasks {
                // SAFETY: the task is only *called* (and dropped) before
                // `latch.wait()` below returns — the latch is decremented
                // strictly after the task has been consumed — so every
                // borrow with lifetime 'scope stays live for as long as
                // the task exists. Erasing 'scope to 'static is therefore
                // sound; the fat-pointer layout is identical.
                let task: StaticTask = unsafe {
                    std::mem::transmute::<ScopedTask<'scope>, StaticTask>(task)
                };
                let latch = latch.clone();
                q.tasks.push_back(Box::new(move |arena: &mut VarArena| {
                    let outcome = catch_unwind(AssertUnwindSafe(|| task(arena)));
                    latch.complete_one(outcome.is_err());
                }));
            }
            self.shared.work_ready.notify_all();
        }
        if latch.wait() {
            panic!("ExecPool worker task panicked");
        }
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        {
            let mut q = lock(&self.shared.queue);
            q.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    // The worker's persistent arena: starts tiny, grows on demand inside
    // `run_with_arena`, and is then reused for every subsequent task.
    let mut arena = VarArena::new(1, 1, 1024);
    loop {
        let task = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(t) = q.tasks.pop_front() {
                    break t;
                }
                if q.shutdown {
                    return;
                }
                q = shared
                    .work_ready
                    .wait(q)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // The task wrapper already catches panics and reports them via
        // its latch; nothing to do here.
        task(&mut arena);
    }
}

/// The machine's available parallelism (the global pool's size).
pub fn default_parallelism() -> usize {
    thread::available_parallelism().map_or(1, usize::from)
}

/// The `XORSLP_PARALLELISM` environment override, if set and parseable:
/// `0` means "auto" (machine-sized global pool), `k ≥ 1` forces `k`
/// workers. Codec constructors use this as their *default*; an explicit
/// builder call still wins.
pub fn env_parallelism() -> Option<usize> {
    std::env::var("XORSLP_PARALLELISM").ok()?.trim().parse().ok()
}

/// The `XORSLP_BLOCKSIZE` environment override, if set and a positive
/// byte count. Same precedence as the other engine env knobs: above the
/// tuned profile, below explicit builder calls.
pub fn env_blocksize() -> Option<usize> {
    std::env::var("XORSLP_BLOCKSIZE")
        .ok()?
        .trim()
        .parse()
        .ok()
        .filter(|&b: &usize| b > 0)
}

/// A pool selected from a `parallelism` knob: `0` borrows the shared
/// [`ExecPool::global`] pool, `k ≥ 1` owns a dedicated `k`-worker pool.
pub enum PoolChoice {
    /// The machine-sized shared pool.
    Global,
    /// A dedicated pool owned by one codec.
    Owned(ExecPool),
}

impl PoolChoice {
    /// Resolve a `parallelism` knob (`0` = auto).
    pub fn from_parallelism(parallelism: usize) -> PoolChoice {
        match parallelism {
            0 => PoolChoice::Global,
            k => PoolChoice::Owned(ExecPool::new(k)),
        }
    }

    /// The pool to execute on.
    pub fn pool(&self) -> &ExecPool {
        match self {
            PoolChoice::Global => ExecPool::global(),
            PoolChoice::Owned(p) => p,
        }
    }

    /// Effective parallelism (the stripe-count ceiling).
    pub fn workers(&self) -> usize {
        self.pool().workers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_tasks_see_borrowed_state_and_all_run() {
        let pool = ExecPool::new(3);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<ScopedTask<'_>> = (0..16)
            .map(|_| {
                Box::new(|_: &mut VarArena| {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as ScopedTask<'_>
            })
            .collect();
        pool.run_scoped(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn pool_survives_many_scopes() {
        let pool = ExecPool::new(2);
        for round in 0..50 {
            let sum = AtomicUsize::new(0);
            let tasks: Vec<ScopedTask<'_>> = (0..4)
                .map(|i| {
                    let sum = &sum;
                    Box::new(move |_: &mut VarArena| {
                        sum.fetch_add(i + round, Ordering::SeqCst);
                    }) as ScopedTask<'_>
                })
                .collect();
            pool.run_scoped(tasks);
            assert_eq!(sum.load(Ordering::SeqCst), 6 + 4 * round);
        }
    }

    #[test]
    fn worker_arena_is_persistent_and_grows() {
        let pool = ExecPool::new(1);
        // Grow the single worker's arena, then observe the same capacity
        // from a later scope (no shrink, no realloc).
        pool.run_scoped(vec![Box::new(|arena: &mut VarArena| {
            if !arena.fits(4, 4096, 1024) {
                *arena = VarArena::new(4, 4096, 1024);
            }
        })]);
        let seen = Mutex::new((0usize, 0usize));
        pool.run_scoped(vec![Box::new(|arena: &mut VarArena| {
            *lock(&seen) = (arena.n_vars(), arena.array_len());
        })]);
        assert_eq!(*lock(&seen), (4, 4096));
    }

    #[test]
    fn panicking_task_propagates_but_pool_stays_usable() {
        let pool = ExecPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_scoped(vec![Box::new(|_: &mut VarArena| panic!("boom"))]);
        }));
        assert!(result.is_err());
        // The pool still executes new work afterwards.
        let ran = AtomicUsize::new(0);
        pool.run_scoped(vec![Box::new(|_: &mut VarArena| {
            ran.fetch_add(1, Ordering::SeqCst);
        })]);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = ExecPool::global();
        let b = ExecPool::global();
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.workers(), default_parallelism());
    }

    #[test]
    fn pool_choice_resolves() {
        assert!(matches!(PoolChoice::from_parallelism(0), PoolChoice::Global));
        let owned = PoolChoice::from_parallelism(3);
        assert_eq!(owned.workers(), 3);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = ExecPool::new(0);
        assert_eq!(pool.workers(), 1);
    }
}
