//! The compute-backend seam: where a compiled XOR program meets hardware.
//!
//! Codecs compile matrices down to [`ExecProgram`]s and then only ever
//! *execute* them. [`ComputeBackend`] cuts an explicit trait at exactly
//! that boundary, so the execution substrate — which pool, how many
//! stripes, eventually which *device* — is a pluggable property of a
//! codec instead of hard-wired plumbing. The CPU implementation
//! ([`CpuBackend`]) wraps the striped [`ExecPool`] engine; an
//! accelerator backend (the ParXive-style feature-gated CUDA seam) would
//! implement the same two entry points and slot in without touching any
//! codec code.
//!
//! The trait is object-safe on purpose: codecs hold an
//! `Arc<dyn ComputeBackend>`, so one backend can be shared by every
//! codec a process constructs.

use crate::exec::{ExecError, ExecProgram};
use crate::pool::{ExecPool, PoolChoice};
use std::sync::Arc;

/// An execution substrate for compiled XOR programs.
///
/// Implementations must be semantically identical to
/// [`ExecProgram::run_with_arena`]: same outputs for same inputs, shape
/// errors reported before any byte is written. They differ only in
/// *where* and *how parallel* the element-wise work runs.
pub trait ComputeBackend: Send + Sync {
    /// Human-readable backend name (`"cpu"`), used by diagnostics and the
    /// autotuner's profile fingerprint.
    fn name(&self) -> &'static str;

    /// The backend's parallel width — the stripe-count ceiling for one
    /// program run, and the natural chunk fan-out for callers that split
    /// non-program work (hashing, verification) themselves.
    ///
    /// Always at least 1.
    fn lanes(&self) -> usize;

    /// Execute a compiled program over full shards: read `inputs`,
    /// overwrite `outputs`.
    fn run(
        &self,
        prog: &ExecProgram,
        inputs: &[&[u8]],
        outputs: &mut [&mut [u8]],
    ) -> Result<(), ExecError>;

    /// The delta-update discipline: run `prog` over `old ⊕ new` (each
    /// shard split into `pps` equal packets) and XOR the program's
    /// outputs into `shards` in place. See
    /// [`ExecProgram::run_delta_striped`] for the shape contract the
    /// caller has already validated.
    fn run_delta(
        &self,
        prog: &ExecProgram,
        pps: usize,
        old: &[u8],
        new: &[u8],
        shards: &mut [&mut [u8]],
    ) -> Result<(), ExecError>;
}

/// The CPU backend: striped execution across an [`ExecPool`].
///
/// `parallelism = 0` shares the lazily-created machine-sized global
/// pool; `k ≥ 1` owns a dedicated `k`-worker pool (the PR-2 semantics,
/// unchanged — this type is `PoolChoice` wearing the trait).
pub struct CpuBackend {
    pool: PoolChoice,
}

impl CpuBackend {
    /// Build from the codec `parallelism` knob (`0` = global pool).
    pub fn from_parallelism(parallelism: usize) -> CpuBackend {
        CpuBackend {
            pool: PoolChoice::from_parallelism(parallelism),
        }
    }

    /// The underlying pool, for callers that submit their own scoped
    /// tasks (e.g. multi-threaded whole-object verification).
    pub fn pool(&self) -> &ExecPool {
        self.pool.pool()
    }
}

impl ComputeBackend for CpuBackend {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn lanes(&self) -> usize {
        self.pool.workers()
    }

    fn run(
        &self,
        prog: &ExecProgram,
        inputs: &[&[u8]],
        outputs: &mut [&mut [u8]],
    ) -> Result<(), ExecError> {
        prog.run_striped(inputs, outputs, self.pool.pool(), self.pool.workers())
    }

    fn run_delta(
        &self,
        prog: &ExecProgram,
        pps: usize,
        old: &[u8],
        new: &[u8],
        shards: &mut [&mut [u8]],
    ) -> Result<(), ExecError> {
        prog.run_delta_striped(pps, old, new, shards, self.pool.pool(), self.pool.workers())
    }
}

/// Construct the default backend for a `parallelism` knob — the one
/// place codec constructors call, so swapping the default substrate is a
/// one-line change.
pub fn cpu_backend(parallelism: usize) -> Arc<dyn ComputeBackend> {
    Arc::new(CpuBackend::from_parallelism(parallelism))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Kernel;
    use slp::Term::{Const, Var};
    use slp::{Instr, Slp};

    fn section_4_1() -> Slp {
        Slp::new(
            4,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]),
                Instr::new(1, vec![Const(1), Const(2), Const(3)]),
                Instr::new(2, vec![Var(0), Var(1)]),
            ],
            vec![Var(1), Var(2), Var(0)],
        )
        .unwrap()
    }

    #[test]
    fn cpu_backend_matches_reference() {
        let p = section_4_1();
        let prog = ExecProgram::compile(&p, 64, Kernel::Auto);
        for parallelism in [0usize, 1, 3] {
            let backend = cpu_backend(parallelism);
            assert_eq!(backend.name(), "cpu");
            assert!(backend.lanes() >= 1);
            let data: Vec<Vec<u8>> = (0..4)
                .map(|k| (0..1000).map(|i| ((k * 37 + i * 11) % 256) as u8).collect())
                .collect();
            let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
            let expect = p.run_reference(&refs);
            let mut outs = vec![vec![0u8; 1000]; 3];
            {
                let mut orefs: Vec<&mut [u8]> =
                    outs.iter_mut().map(Vec::as_mut_slice).collect();
                backend.run(&prog, &refs, &mut orefs).unwrap();
            }
            assert_eq!(outs, expect, "parallelism {parallelism}");
        }
    }

    #[test]
    fn cpu_backend_reports_shape_errors() {
        let p = section_4_1();
        let prog = ExecProgram::compile(&p, 64, Kernel::Scalar);
        let backend = cpu_backend(1);
        let a = vec![0u8; 8];
        let refs: Vec<&[u8]> = vec![&a; 3]; // one input short
        let mut outs = vec![vec![0u8; 8]; 3];
        let mut orefs: Vec<&mut [u8]> = outs.iter_mut().map(Vec::as_mut_slice).collect();
        assert_eq!(
            backend.run(&prog, &refs, &mut orefs),
            Err(ExecError::InputCount { expected: 4, got: 3 })
        );
    }

    #[test]
    fn backend_is_share_and_object_safe() {
        let backend: Arc<dyn ComputeBackend> = cpu_backend(2);
        let clone = backend.clone();
        assert_eq!(clone.name(), "cpu");
        assert_eq!(clone.lanes(), 2);
    }
}
