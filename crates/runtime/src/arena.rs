//! Aligned, cache-conflict-aware buffer management (§7.4).
//!
//! On a 32 KiB / 8-way / 64-byte-line L1 cache, two blocks whose start
//! addresses are congruent modulo 4 KiB compete for the same cache sets.
//! The paper's allocation strategy places array `i` so that
//! `A(arr_i) ≡ i·B (mod 4096)` for blocksize `B`, spreading concurrently
//! used chunks across sets. [`VarArena`] and [`StripedBuf`] both implement
//! this staggering.

use std::alloc::{alloc_zeroed, dealloc, Layout};

/// The conflict modulus: blocks congruent mod 4096 share L1 cache sets.
pub const CACHE_PAGE: usize = 4096;

/// A heap buffer aligned to [`CACHE_PAGE`].
pub struct AlignedBuf {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: AlignedBuf uniquely owns its allocation, like Vec<u8>.
unsafe impl Send for AlignedBuf {}
unsafe impl Sync for AlignedBuf {}

impl AlignedBuf {
    /// Allocate `len` zeroed bytes aligned to 4096.
    pub fn new(len: usize) -> AlignedBuf {
        assert!(len > 0, "cannot allocate an empty aligned buffer");
        let layout =
            Layout::from_size_align(len, CACHE_PAGE).expect("invalid aligned-buffer layout");
        // SAFETY: layout has non-zero size (len > 0 asserted above).
        let ptr = unsafe { alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "aligned allocation of {len} bytes failed");
        AlignedBuf { ptr, len }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the buffer has zero length (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base pointer (4096-aligned).
    pub fn as_ptr(&self) -> *const u8 {
        self.ptr
    }

    /// Mutable base pointer.
    pub fn as_mut_ptr(&mut self) -> *mut u8 {
        self.ptr
    }

    /// The whole buffer as a slice.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: ptr is valid for len bytes and initialized (zeroed).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// The whole buffer as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: ptr is valid for len bytes, initialized, uniquely owned.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        let layout = Layout::from_size_align(self.len, CACHE_PAGE)
            .expect("layout was valid at allocation");
        // SAFETY: allocated with the same layout in `new`.
        unsafe { dealloc(self.ptr, layout) };
    }
}

/// Round `n` up to a multiple of `m`.
fn round_up(n: usize, m: usize) -> usize {
    n.div_ceil(m) * m
}

/// The variable arena of the executor: `n_vars` buffers of `array_len`
/// bytes each, placed so that buffer `i` starts at an address
/// `≡ i·blocksize (mod 4096)`.
pub struct VarArena {
    buf: AlignedBuf,
    stride: usize,
    array_len: usize,
    n_vars: usize,
}

impl VarArena {
    /// Allocate an arena. `blocksize` is the blocking parameter `B`; the
    /// staggering only matters when `B` divides 4096, but any value is
    /// accepted.
    pub fn new(n_vars: usize, array_len: usize, blocksize: usize) -> VarArena {
        let n = n_vars.max(1);
        let len = array_len.max(1);
        // stride ≡ blocksize (mod 4096) and stride ≥ array_len, so buffer
        // i sits at i·stride ≡ i·B (mod 4096).
        let stride = round_up(len, CACHE_PAGE) + (blocksize % CACHE_PAGE);
        VarArena {
            buf: AlignedBuf::new(n * stride),
            stride,
            array_len: len,
            n_vars: n,
        }
    }

    /// Does this arena fit a program with the given requirements?
    ///
    /// Grow-on-demand semantics: an arena sized for a *larger* array
    /// length still fits a smaller one (the staggering invariant
    /// `A(v_i) ≡ i·B (mod 4096)` only depends on the stride residue, not
    /// on the run length), so long-lived arenas — e.g. a pool worker's —
    /// stop reallocating once they have grown to the peak working set.
    pub fn fits(&self, n_vars: usize, array_len: usize, blocksize: usize) -> bool {
        self.n_vars >= n_vars.max(1)
            && self.array_len >= array_len.max(1)
            && self.stride % CACHE_PAGE == blocksize % CACHE_PAGE
    }

    /// Number of variable buffers.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Length of each buffer.
    pub fn array_len(&self) -> usize {
        self.array_len
    }

    /// Base pointer of variable `i`'s buffer.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn var_ptr(&self, i: usize) -> *mut u8 {
        assert!(i < self.n_vars, "variable index {i} out of arena range");
        // SAFETY: i·stride + array_len ≤ buffer length by construction.
        unsafe { self.buf.as_ptr().add(i * self.stride) as *mut u8 }
    }

    /// Variable `i`'s buffer as a slice (test helper).
    pub fn var_slice(&self, i: usize) -> &[u8] {
        // SAFETY: var_ptr bounds-checks; region is initialized.
        unsafe { std::slice::from_raw_parts(self.var_ptr(i), self.array_len) }
    }
}

/// A set of equally-sized strips allocated with the same staggering
/// strategy — used by benchmarks to lay out *input* packets the way the
/// paper's evaluation does, and by tests as a convenient shard container.
pub struct StripedBuf {
    arena: VarArena,
}

impl StripedBuf {
    /// Allocate `strips` buffers of `strip_len` bytes staggered for
    /// blocksize `B`.
    pub fn new(strips: usize, strip_len: usize, blocksize: usize) -> StripedBuf {
        StripedBuf {
            arena: VarArena::new(strips, strip_len, blocksize),
        }
    }

    /// Number of strips.
    pub fn strips(&self) -> usize {
        self.arena.n_vars()
    }

    /// Length of each strip.
    pub fn strip_len(&self) -> usize {
        self.arena.array_len()
    }

    /// Strip `i` as a slice.
    pub fn strip(&self, i: usize) -> &[u8] {
        self.arena.var_slice(i)
    }

    /// Strip `i` as a mutable slice.
    pub fn strip_mut(&mut self, i: usize) -> &mut [u8] {
        // SAFETY: strips are disjoint; &mut self gives unique access.
        unsafe { std::slice::from_raw_parts_mut(self.arena.var_ptr(i), self.arena.array_len()) }
    }

    /// All strips as immutable slices.
    pub fn all(&self) -> Vec<&[u8]> {
        (0..self.strips()).map(|i| self.strip(i)).collect()
    }

    /// All strips as mutable slices (strips are disjoint, so handing out
    /// one `&mut` per strip from `&mut self` is sound).
    pub fn all_mut(&mut self) -> Vec<&mut [u8]> {
        let len = self.arena.array_len();
        (0..self.strips())
            .map(|i| {
                let ptr = self.arena.var_ptr(i);
                // SAFETY: var_ptr(i) regions never overlap (see
                // VarArena::new); &mut self guarantees exclusive access to
                // the whole arena for the lifetime of the returned slices.
                unsafe { std::slice::from_raw_parts_mut(ptr, len) }
            })
            .collect()
    }

    /// Fill every strip from an iterator of bytes (cycling workload
    /// generator for tests).
    pub fn fill_with(&mut self, mut f: impl FnMut(usize, usize) -> u8) {
        for s in 0..self.strips() {
            let strip = self.strip_mut(s);
            for (i, b) in strip.iter_mut().enumerate() {
                *b = f(s, i);
            }
        }
    }
}

thread_local! {
    /// The calling thread's reusable byte scratch (see
    /// [`with_byte_scratch`]): grows to the largest request and is then
    /// reused, so steady-state hot paths (delta updates, stripe-wise
    /// verify) allocate nothing.
    static BYTE_SCRATCH: std::cell::RefCell<Vec<u8>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Run `f` over `need` bytes of this thread's persistent scratch buffer.
///
/// The scratch contents are whatever a previous caller left there —
/// treat the slice as uninitialized and overwrite before reading. Not
/// re-entrant: `f` must not itself call `with_byte_scratch` on the same
/// thread (the codec hot paths that use this never nest).
pub fn with_byte_scratch<R>(need: usize, f: impl FnOnce(&mut [u8]) -> R) -> R {
    BYTE_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < need {
            buf.resize(need, 0);
        }
        f(&mut buf[..need])
    })
}

/// The resting form of the [`with_ref_scratch`] vectors: always empty,
/// so the `'static` lifetime is never attached to a live reference.
type RefScratch = (Vec<&'static [u8]>, Vec<&'static mut [u8]>);

thread_local! {
    /// Reusable slice-reference scratch (see [`with_ref_scratch`]): the
    /// packet-ref lists the codecs build per call. At rest both vectors
    /// are always empty; only their capacity persists.
    static REF_SCRATCH: std::cell::RefCell<RefScratch> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

/// Run `f` with this thread's persistent pair of slice-reference vectors
/// (immutable inputs, mutable outputs), both empty on entry.
///
/// The codec hot paths flatten shards into per-packet slice lists on
/// every call; collecting those into fresh `Vec`s is the last per-call
/// allocation on the steady-state encode path. This helper lends out
/// capacity-retaining vectors instead — the `with_byte_scratch`
/// discipline applied to reference lists. Not re-entrant: a nested call
/// simply sees empty fresh vectors (graceful, but unshared).
pub fn with_ref_scratch<'a, R>(
    f: impl FnOnce(&mut Vec<&'a [u8]>, &mut Vec<&'a mut [u8]>) -> R,
) -> R {
    let (ins, outs) = REF_SCRATCH.with(|cell| {
        let mut b = cell.borrow_mut();
        (std::mem::take(&mut b.0), std::mem::take(&mut b.1))
    });
    // SAFETY: both vectors are empty (emptied before being stored back,
    // and `mem::take` above leaves empties behind), so this transmute
    // only changes the lifetime parameter of a `Vec` holding no
    // elements. Lifetimes do not affect layout.
    let mut ins: Vec<&'a [u8]> = unsafe { std::mem::transmute::<Vec<&'static [u8]>, _>(ins) };
    let mut outs: Vec<&'a mut [u8]> =
        unsafe { std::mem::transmute::<Vec<&'static mut [u8]>, _>(outs) };
    let r = f(&mut ins, &mut outs);
    ins.clear();
    outs.clear();
    // SAFETY: cleared above — empty again, lifetime-only transmute back.
    let ins: Vec<&'static [u8]> = unsafe { std::mem::transmute::<Vec<&'a [u8]>, _>(ins) };
    let outs: Vec<&'static mut [u8]> =
        unsafe { std::mem::transmute::<Vec<&'a mut [u8]>, _>(outs) };
    REF_SCRATCH.with(|cell| {
        let mut b = cell.borrow_mut();
        b.0 = ins;
        b.1 = outs;
    });
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_scratch_grows_and_is_reused() {
        let p1 = with_byte_scratch(100, |buf| {
            assert_eq!(buf.len(), 100);
            buf.fill(0xEE);
            buf.as_ptr() as usize
        });
        // A larger request grows the buffer; a smaller one reuses it.
        with_byte_scratch(1000, |buf| assert_eq!(buf.len(), 1000));
        let p2 = with_byte_scratch(50, |buf| {
            assert_eq!(buf.len(), 50);
            buf.as_ptr() as usize
        });
        // After the grow the backing allocation is stable.
        let p3 = with_byte_scratch(1000, |buf| buf.as_ptr() as usize);
        assert_eq!(p2, p3);
        let _ = p1;
    }

    #[test]
    fn ref_scratch_is_empty_on_entry_and_reuses_capacity() {
        let data = vec![1u8; 8];
        let mut out = vec![0u8; 8];
        let cap = with_ref_scratch(|ins, outs| {
            assert!(ins.is_empty() && outs.is_empty());
            for _ in 0..32 {
                ins.push(&data);
            }
            outs.push(&mut out);
            ins.capacity()
        });
        // The next borrow sees empty vectors backed by the same capacity.
        with_ref_scratch(|ins: &mut Vec<&[u8]>, outs| {
            assert!(ins.is_empty() && outs.is_empty());
            assert_eq!(ins.capacity(), cap);
        });
    }

    #[test]
    fn aligned_buf_is_page_aligned_and_zeroed() {
        let b = AlignedBuf::new(10_000);
        assert_eq!(b.as_ptr() as usize % CACHE_PAGE, 0);
        assert!(b.as_slice().iter().all(|&x| x == 0));
        assert_eq!(b.len(), 10_000);
    }

    #[test]
    fn arena_staggering_matches_the_paper() {
        // A(v_i) ≡ i·B (mod 4096) for B = 1024 (§7.4's example: offsets
        // cycle 0, 1K, 2K, 3K, 0, 1K, …).
        let blocksize = 1024;
        let arena = VarArena::new(8, 12_288, blocksize);
        for i in 0..8 {
            let addr = arena.var_ptr(i) as usize;
            assert_eq!(
                addr % CACHE_PAGE,
                (i * blocksize) % CACHE_PAGE,
                "variable {i} not staggered"
            );
        }
    }

    #[test]
    fn arena_buffers_are_disjoint() {
        let arena = VarArena::new(4, 1000, 512);
        for i in 0..4 {
            for j in 0..4 {
                if i == j {
                    continue;
                }
                let a = arena.var_ptr(i) as usize;
                let b = arena.var_ptr(j) as usize;
                assert!(a + 1000 <= b || b + 1000 <= a, "buffers {i} and {j} overlap");
            }
        }
    }

    #[test]
    fn arena_fits_checks() {
        let arena = VarArena::new(8, 4096, 1024);
        assert!(arena.fits(8, 4096, 1024));
        assert!(arena.fits(4, 4096, 1024));
        // grow-on-demand: a smaller run length fits a larger arena
        assert!(arena.fits(8, 2048, 1024));
        assert!(!arena.fits(9, 4096, 1024));
        assert!(!arena.fits(8, 8192, 1024));
        assert!(!arena.fits(8, 4096, 512));
    }

    #[test]
    fn striped_buf_roundtrip() {
        let mut s = StripedBuf::new(3, 100, 64);
        s.fill_with(|strip, i| (strip * 31 + i) as u8);
        for strip in 0..3 {
            assert!(s
                .strip(strip)
                .iter()
                .enumerate()
                .all(|(i, &b)| b == (strip * 31 + i) as u8));
        }
        assert_eq!(s.all().len(), 3);
    }

    #[test]
    fn degenerate_sizes_are_clamped() {
        let arena = VarArena::new(0, 0, 64);
        assert_eq!(arena.n_vars(), 1);
        assert_eq!(arena.array_len(), 1);
    }
}
