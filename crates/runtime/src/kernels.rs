//! XOR kernels: `dst[i] = s1[i] ^ s2[i] ^ … ^ sk[i]` for one chunk.
//!
//! Three implementations, mirroring §7.2's `xor1`/`xor32` comparison plus a
//! portable middle ground:
//!
//! * [`Kernel::Scalar`] — byte-at-a-time (`xor1`);
//! * [`Kernel::Wide64`] — eight bytes per step via unaligned `u64`s;
//! * [`Kernel::Avx2`] — 32 bytes per step via `_mm256_xor_si256`
//!   (`xor32`), with a 2× unrolled main loop.
//!
//! # Aliasing contract
//!
//! `dst` may equal one or more of the sources **exactly** (same address) —
//! scheduled programs reuse pebbles as in `p1 ← ⊕(p1, p2, p3)`. Partial
//! overlap is forbidden. Element-wise processing makes exact aliasing
//! sound: position `i` is fully read before it is written.

/// Which XOR implementation to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Kernel {
    /// Byte-wise loop — the paper's `xor1`.
    Scalar,
    /// `u64`-wide loop; portable fallback.
    Wide64,
    /// AVX2 32-byte loop — the paper's `xor32`.
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// Detect the best available kernel at first use.
    #[default]
    Auto,
}

impl Kernel {
    /// Resolve [`Kernel::Auto`] to a concrete kernel for this CPU.
    pub fn resolve(self) -> Kernel {
        match self {
            Kernel::Auto => {
                #[cfg(target_arch = "x86_64")]
                {
                    if std::arch::is_x86_feature_detected!("avx2") {
                        return Kernel::Avx2;
                    }
                }
                Kernel::Wide64
            }
            k => k,
        }
    }

    /// The `XORSLP_KERNEL` environment override, if set and recognised
    /// (`scalar`, `wide64`, `avx2`, `auto`). Codec constructors use this
    /// as their *default* kernel; an explicit builder call still wins.
    /// CI uses it to force the whole suite through each implementation.
    pub fn from_env() -> Option<Kernel> {
        match std::env::var("XORSLP_KERNEL").ok()?.trim().to_ascii_lowercase().as_str() {
            "scalar" | "xor1" => Some(Kernel::Scalar),
            "wide64" | "xor8" => Some(Kernel::Wide64),
            #[cfg(target_arch = "x86_64")]
            "avx2" | "xor32" => {
                // Never let an env var force AVX2 onto a CPU without it
                // (calling the target_feature kernel would be UB); fall
                // back to Auto, which picks the best *available* kernel.
                if std::arch::is_x86_feature_detected!("avx2") {
                    Some(Kernel::Avx2)
                } else {
                    Some(Kernel::Auto)
                }
            }
            "auto" => Some(Kernel::Auto),
            _ => None,
        }
    }

    /// Human-readable name used by the benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "xor1",
            Kernel::Wide64 => "xor8",
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => "xor32",
            Kernel::Auto => "auto",
        }
    }
}

/// XOR `srcs` into `dst` for `len` bytes with the chosen kernel.
///
/// With a single source this is a copy (a no-op when `dst == srcs[0]`).
///
/// # Safety
/// * every pointer must be valid for `len` bytes;
/// * `dst` may only alias a source at the *same* address (no partial
///   overlap);
/// * for [`Kernel::Avx2`] the CPU must support AVX2 (use
///   [`Kernel::resolve`]).
///
/// # Panics
/// Panics if `srcs` is empty.
pub unsafe fn xor_into(kernel: Kernel, dst: *mut u8, srcs: &[*const u8], len: usize) {
    assert!(!srcs.is_empty(), "XOR of zero sources is undefined");
    if srcs.len() == 1 {
        if !std::ptr::eq(srcs[0], dst as *const u8) {
            std::ptr::copy_nonoverlapping(srcs[0], dst, len);
        }
        return;
    }
    match kernel {
        Kernel::Scalar => xor_scalar(dst, srcs, 0, len),
        Kernel::Wide64 => xor_wide64(dst, srcs, 0, len),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => xor_avx2(dst, srcs, len),
        Kernel::Auto => xor_into(kernel.resolve(), dst, srcs, len),
    }
}

// The inner kernels take a base offset instead of pre-shifted pointer
// arrays, so tail handoffs (wide → scalar) never materialize a shifted
// copy of `srcs` — the executor's inner loop stays allocation-free.

unsafe fn xor_scalar(dst: *mut u8, srcs: &[*const u8], base: usize, len: usize) {
    for i in base..base + len {
        let mut acc = *srcs[0].add(i);
        for s in &srcs[1..] {
            acc ^= *s.add(i);
        }
        *dst.add(i) = acc;
    }
}

unsafe fn xor_wide64(dst: *mut u8, srcs: &[*const u8], base: usize, len: usize) {
    let words = len / 8;
    for w in 0..words {
        let off = base + w * 8;
        let mut acc = (srcs[0].add(off) as *const u64).read_unaligned();
        for s in &srcs[1..] {
            acc ^= (s.add(off) as *const u64).read_unaligned();
        }
        (dst.add(off) as *mut u64).write_unaligned(acc);
    }
    let tail = words * 8;
    if tail < len {
        xor_scalar(dst, srcs, base + tail, len - tail);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn xor_avx2(dst: *mut u8, srcs: &[*const u8], len: usize) {
    use std::arch::x86_64::*;
    let mut off = 0;
    // 2× unrolled 32-byte lanes for instruction-level parallelism.
    while off + 64 <= len {
        let mut a = _mm256_loadu_si256(srcs[0].add(off) as *const __m256i);
        let mut b = _mm256_loadu_si256(srcs[0].add(off + 32) as *const __m256i);
        for s in &srcs[1..] {
            a = _mm256_xor_si256(a, _mm256_loadu_si256(s.add(off) as *const __m256i));
            b = _mm256_xor_si256(b, _mm256_loadu_si256(s.add(off + 32) as *const __m256i));
        }
        _mm256_storeu_si256(dst.add(off) as *mut __m256i, a);
        _mm256_storeu_si256(dst.add(off + 32) as *mut __m256i, b);
        off += 64;
    }
    while off + 32 <= len {
        let mut a = _mm256_loadu_si256(srcs[0].add(off) as *const __m256i);
        for s in &srcs[1..] {
            a = _mm256_xor_si256(a, _mm256_loadu_si256(s.add(off) as *const __m256i));
        }
        _mm256_storeu_si256(dst.add(off) as *mut __m256i, a);
        off += 32;
    }
    if off < len {
        xor_wide64(dst, srcs, off, len - off);
    }
}

/// Safe convenience wrapper over slices, used by tests and small callers.
///
/// # Panics
/// Panics if lengths differ or `srcs` is empty.
pub fn xor_slices(kernel: Kernel, dst: &mut [u8], srcs: &[&[u8]]) {
    assert!(!srcs.is_empty(), "XOR of zero sources is undefined");
    for s in srcs {
        assert_eq!(s.len(), dst.len(), "length mismatch");
    }
    let ptrs: Vec<*const u8> = srcs.iter().map(|s| s.as_ptr()).collect();
    unsafe { xor_into(kernel, dst.as_mut_ptr(), &ptrs, dst.len()) }
}

/// In-place accumulation `dst ^= src` with the given kernel.
///
/// Delta parity updates end with exactly this step: XOR a freshly
/// computed delta-parity strip into the stored parity shard. The
/// destination aliases itself as the first source at the *same* address,
/// the one aliasing form every kernel supports (pebble reuse).
///
/// # Panics
/// Panics if the lengths differ.
pub fn xor_accumulate(kernel: Kernel, dst: &mut [u8], src: &[u8]) {
    assert_eq!(src.len(), dst.len(), "length mismatch");
    if dst.is_empty() {
        return;
    }
    // Derive the aliased read pointer from the *mutable* borrow so both
    // pointers share one provenance (a later as_mut_ptr would invalidate
    // a shared as_ptr tag under Stacked Borrows).
    let d = dst.as_mut_ptr();
    let srcs = [d as *const u8, src.as_ptr()];
    unsafe { xor_into(kernel, d, &srcs, dst.len()) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kernels() -> Vec<Kernel> {
        let mut ks = vec![Kernel::Scalar, Kernel::Wide64];
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            ks.push(Kernel::Avx2);
        }
        ks
    }

    fn reference_xor(srcs: &[&[u8]]) -> Vec<u8> {
        let mut out = srcs[0].to_vec();
        for s in &srcs[1..] {
            for (d, x) in out.iter_mut().zip(*s) {
                *d ^= x;
            }
        }
        out
    }

    #[test]
    fn kernels_agree_with_reference_across_lengths_and_arities() {
        // Odd lengths exercise every tail path (64/32/8/1 bytes).
        for len in [0usize, 1, 7, 8, 31, 32, 33, 63, 64, 65, 127, 200, 1024, 4097] {
            for arity in 1..=9usize {
                let srcs: Vec<Vec<u8>> = (0..arity)
                    .map(|a| (0..len).map(|i| (i as u8).wrapping_mul(a as u8 + 3) ^ 0x5A).collect())
                    .collect();
                let refs: Vec<&[u8]> = srcs.iter().map(Vec::as_slice).collect();
                let expect = reference_xor(&refs);
                for k in all_kernels() {
                    let mut dst = vec![0u8; len];
                    xor_slices(k, &mut dst, &refs);
                    assert_eq!(dst, expect, "kernel {k:?} len {len} arity {arity}");
                }
            }
        }
    }

    #[test]
    fn exact_aliasing_accumulates_in_place() {
        // dst == srcs[0]: p ← ⊕(p, q) must behave like p ^= q.
        for k in all_kernels() {
            let mut p: Vec<u8> = (0..100u8).collect();
            let q: Vec<u8> = (0..100u8).map(|i| i.wrapping_mul(7)).collect();
            let expect: Vec<u8> = p.iter().zip(&q).map(|(a, b)| a ^ b).collect();
            let ptrs = [p.as_ptr(), q.as_ptr()];
            unsafe { xor_into(k, p.as_mut_ptr(), &ptrs, 100) };
            assert_eq!(p, expect, "kernel {k:?}");
        }
    }

    #[test]
    fn xor_accumulate_matches_manual_xor() {
        for k in all_kernels() {
            for len in [0usize, 1, 7, 64, 100, 1025] {
                let mut dst: Vec<u8> = (0..len).map(|i| (i * 13) as u8).collect();
                let src: Vec<u8> = (0..len).map(|i| (i * 31 + 5) as u8).collect();
                let expect: Vec<u8> = dst.iter().zip(&src).map(|(a, b)| a ^ b).collect();
                xor_accumulate(k, &mut dst, &src);
                assert_eq!(dst, expect, "kernel {k:?} len {len}");
            }
        }
    }

    #[test]
    fn single_source_is_copy() {
        for k in all_kernels() {
            let src: Vec<u8> = (0..50u8).collect();
            let mut dst = vec![0u8; 50];
            xor_slices(k, &mut dst, &[&src]);
            assert_eq!(dst, src);
        }
    }

    #[test]
    fn self_copy_is_noop() {
        let mut buf: Vec<u8> = (0..64u8).collect();
        let ptr = buf.as_ptr();
        unsafe { xor_into(Kernel::Wide64, buf.as_mut_ptr(), &[ptr], 64) };
        assert_eq!(buf, (0..64u8).collect::<Vec<u8>>());
    }

    #[test]
    fn auto_resolves_to_something_concrete() {
        let k = Kernel::Auto.resolve();
        assert_ne!(k, Kernel::Auto);
    }

    #[test]
    fn xor_is_involutive_through_kernels() {
        // (a ⊕ b) ⊕ b = a for every kernel — a cheap end-to-end sanity.
        for k in all_kernels() {
            let a: Vec<u8> = (0..777).map(|i| (i * 31 % 251) as u8).collect();
            let b: Vec<u8> = (0..777).map(|i| (i * 17 % 255) as u8).collect();
            let mut t = vec![0u8; 777];
            xor_slices(k, &mut t, &[&a, &b]);
            let mut back = vec![0u8; 777];
            xor_slices(k, &mut back, &[&t, &b]);
            assert_eq!(back, a);
        }
    }

    #[test]
    #[should_panic(expected = "zero sources")]
    fn empty_sources_panics() {
        let mut dst = [0u8; 4];
        xor_slices(Kernel::Scalar, &mut dst, &[]);
    }
}
