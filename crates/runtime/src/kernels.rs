//! XOR kernels: `dst[i] = s1[i] ^ s2[i] ^ … ^ sk[i]` for one chunk.
//!
//! Five implementations, mirroring §7.2's `xor1`/`xor32` comparison plus a
//! portable middle ground and the wider SIMD tiers:
//!
//! * [`Kernel::Scalar`] — byte-at-a-time (`xor1`);
//! * [`Kernel::Wide64`] — eight bytes per step via unaligned `u64`s;
//! * [`Kernel::Avx2`] — 32 bytes per step via `_mm256_xor_si256`
//!   (`xor32`), with a 2× unrolled main loop;
//! * [`Kernel::Avx512`] — 64 bytes per step via `_mm512_xor_si512`
//!   (`xor64`), 2× unrolled, on CPUs with AVX-512F;
//! * [`Kernel::Neon`] — 16 bytes per step via `veorq_u8` (`xor16`),
//!   4× unrolled, on aarch64.
//!
//! Every kernel produces byte-identical output (asserted by the
//! equivalence matrix in `tests/kernel_equivalence.rs`); they differ only
//! in throughput, which is exactly what the `ec-tune` autotuner measures
//! per machine.
//!
//! # Aliasing contract
//!
//! `dst` may equal one or more of the sources **exactly** (same address) —
//! scheduled programs reuse pebbles as in `p1 ← ⊕(p1, p2, p3)`. Partial
//! overlap is forbidden. Element-wise processing makes exact aliasing
//! sound: position `i` is fully read before it is written.

/// Which XOR implementation to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Kernel {
    /// Byte-wise loop — the paper's `xor1`.
    Scalar,
    /// `u64`-wide loop; portable fallback.
    Wide64,
    /// AVX2 32-byte loop — the paper's `xor32`.
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// AVX-512 64-byte loop (`xor64`); needs AVX-512F.
    #[cfg(target_arch = "x86_64")]
    Avx512,
    /// NEON 16-byte loop (`xor16`) on aarch64.
    #[cfg(target_arch = "aarch64")]
    Neon,
    /// Detect the best available kernel at first use.
    #[default]
    Auto,
}

impl Kernel {
    /// Resolve [`Kernel::Auto`] to a concrete kernel for this CPU:
    /// AVX-512 > AVX2 > `u64` on x86-64, NEON on aarch64. "Best" here
    /// means *widest*; the per-machine throughput winner (wider is not
    /// always faster) is what the `ec-tune` profile records.
    pub fn resolve(self) -> Kernel {
        match self {
            Kernel::Auto => {
                #[cfg(target_arch = "x86_64")]
                {
                    if std::arch::is_x86_feature_detected!("avx512f") {
                        return Kernel::Avx512;
                    }
                    if std::arch::is_x86_feature_detected!("avx2") {
                        return Kernel::Avx2;
                    }
                }
                #[cfg(target_arch = "aarch64")]
                {
                    if std::arch::is_aarch64_feature_detected!("neon") {
                        return Kernel::Neon;
                    }
                }
                Kernel::Wide64
            }
            k => k,
        }
    }

    /// Whether this CPU can execute the kernel ([`Kernel::Auto`] always
    /// can — it resolves to something available).
    pub fn is_available(self) -> bool {
        match self {
            Kernel::Scalar | Kernel::Wide64 | Kernel::Auto => true,
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(target_arch = "aarch64")]
            Kernel::Neon => std::arch::is_aarch64_feature_detected!("neon"),
        }
    }

    /// Parse a kernel name (`scalar`, `wide64`, `avx2`, `avx512`, `neon`,
    /// `auto`, or the paper-style aliases `xor1`/`xor8`/`xor32`/`xor64`/
    /// `xor16`). Names of kernels this *build* does not include (wrong
    /// architecture) are unknown; availability on the running CPU is not
    /// checked here — see [`Kernel::from_env`].
    pub fn parse(name: &str) -> Option<Kernel> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" | "xor1" => Some(Kernel::Scalar),
            "wide64" | "xor8" => Some(Kernel::Wide64),
            #[cfg(target_arch = "x86_64")]
            "avx2" | "xor32" => Some(Kernel::Avx2),
            #[cfg(target_arch = "x86_64")]
            "avx512" | "xor64" => Some(Kernel::Avx512),
            #[cfg(target_arch = "aarch64")]
            "neon" | "xor16" => Some(Kernel::Neon),
            "auto" => Some(Kernel::Auto),
            _ => None,
        }
    }

    /// The `XORSLP_KERNEL` environment override, if set and recognised
    /// (`scalar`, `wide64`, `avx2`, `avx512`, `neon`, `auto`). Codec
    /// constructors use this as their *default* kernel; an explicit
    /// builder call still wins. CI uses it to force the whole suite
    /// through each implementation.
    ///
    /// An env var can never force a SIMD kernel onto a CPU without the
    /// feature (calling the `target_feature` function would be UB): the
    /// request falls back to `Auto` — which picks the best *available*
    /// kernel — with a one-line warning on stderr so a misconfigured
    /// deployment is visible instead of silently slower.
    pub fn from_env() -> Option<Kernel> {
        let raw = std::env::var("XORSLP_KERNEL").ok()?;
        let k = Kernel::parse(&raw)?;
        if k.is_available() {
            Some(k)
        } else {
            eprintln!(
                "xorslp: warning: XORSLP_KERNEL={} requests the {} kernel, \
                 which this CPU does not support; falling back to auto ({})",
                raw.trim(),
                k.name(),
                Kernel::Auto.resolve().name()
            );
            Some(Kernel::Auto)
        }
    }

    /// Human-readable name used by the benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "xor1",
            Kernel::Wide64 => "xor8",
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => "xor32",
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx512 => "xor64",
            #[cfg(target_arch = "aarch64")]
            Kernel::Neon => "xor16",
            Kernel::Auto => "auto",
        }
    }
}

/// Every concrete kernel this CPU can execute, slowest-lane first
/// (scalar, wide64, then the SIMD tiers). This is the autotuner's
/// candidate set and the equivalence tests' iteration domain.
pub fn available_kernels() -> Vec<Kernel> {
    let mut ks = vec![Kernel::Scalar, Kernel::Wide64];
    #[cfg(target_arch = "x86_64")]
    {
        if Kernel::Avx2.is_available() {
            ks.push(Kernel::Avx2);
        }
        if Kernel::Avx512.is_available() {
            ks.push(Kernel::Avx512);
        }
    }
    #[cfg(target_arch = "aarch64")]
    if Kernel::Neon.is_available() {
        ks.push(Kernel::Neon);
    }
    ks
}

/// XOR `srcs` into `dst` for `len` bytes with the chosen kernel.
///
/// With a single source this is a copy (a no-op when `dst == srcs[0]`).
///
/// # Safety
/// * every pointer must be valid for `len` bytes;
/// * `dst` may only alias a source at the *same* address (no partial
///   overlap);
/// * for the SIMD kernels ([`Kernel::Avx2`], [`Kernel::Avx512`],
///   [`Kernel::Neon`]) the CPU must support the corresponding feature
///   (check [`Kernel::is_available`] or use [`Kernel::resolve`]).
///
/// # Panics
/// Panics if `srcs` is empty.
pub unsafe fn xor_into(kernel: Kernel, dst: *mut u8, srcs: &[*const u8], len: usize) {
    assert!(!srcs.is_empty(), "XOR of zero sources is undefined");
    if srcs.len() == 1 {
        if !std::ptr::eq(srcs[0], dst as *const u8) {
            std::ptr::copy_nonoverlapping(srcs[0], dst, len);
        }
        return;
    }
    match kernel {
        Kernel::Scalar => xor_scalar(dst, srcs, 0, len),
        Kernel::Wide64 => xor_wide64(dst, srcs, 0, len),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => xor_avx2(dst, srcs, len),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx512 => xor_avx512(dst, srcs, len),
        #[cfg(target_arch = "aarch64")]
        Kernel::Neon => xor_neon(dst, srcs, len),
        Kernel::Auto => xor_into(kernel.resolve(), dst, srcs, len),
    }
}

// The inner kernels take a base offset instead of pre-shifted pointer
// arrays, so tail handoffs (wide → scalar) never materialize a shifted
// copy of `srcs` — the executor's inner loop stays allocation-free.

unsafe fn xor_scalar(dst: *mut u8, srcs: &[*const u8], base: usize, len: usize) {
    for i in base..base + len {
        let mut acc = *srcs[0].add(i);
        for s in &srcs[1..] {
            acc ^= *s.add(i);
        }
        *dst.add(i) = acc;
    }
}

unsafe fn xor_wide64(dst: *mut u8, srcs: &[*const u8], base: usize, len: usize) {
    let words = len / 8;
    for w in 0..words {
        let off = base + w * 8;
        let mut acc = (srcs[0].add(off) as *const u64).read_unaligned();
        for s in &srcs[1..] {
            acc ^= (s.add(off) as *const u64).read_unaligned();
        }
        (dst.add(off) as *mut u64).write_unaligned(acc);
    }
    let tail = words * 8;
    if tail < len {
        xor_scalar(dst, srcs, base + tail, len - tail);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn xor_avx2(dst: *mut u8, srcs: &[*const u8], len: usize) {
    use std::arch::x86_64::*;
    let mut off = 0;
    // 2× unrolled 32-byte lanes for instruction-level parallelism.
    while off + 64 <= len {
        let mut a = _mm256_loadu_si256(srcs[0].add(off) as *const __m256i);
        let mut b = _mm256_loadu_si256(srcs[0].add(off + 32) as *const __m256i);
        for s in &srcs[1..] {
            a = _mm256_xor_si256(a, _mm256_loadu_si256(s.add(off) as *const __m256i));
            b = _mm256_xor_si256(b, _mm256_loadu_si256(s.add(off + 32) as *const __m256i));
        }
        _mm256_storeu_si256(dst.add(off) as *mut __m256i, a);
        _mm256_storeu_si256(dst.add(off + 32) as *mut __m256i, b);
        off += 64;
    }
    while off + 32 <= len {
        let mut a = _mm256_loadu_si256(srcs[0].add(off) as *const __m256i);
        for s in &srcs[1..] {
            a = _mm256_xor_si256(a, _mm256_loadu_si256(s.add(off) as *const __m256i));
        }
        _mm256_storeu_si256(dst.add(off) as *mut __m256i, a);
        off += 32;
    }
    if off < len {
        xor_wide64(dst, srcs, off, len - off);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn xor_avx512(dst: *mut u8, srcs: &[*const u8], len: usize) {
    use std::arch::x86_64::*;
    let mut off = 0;
    // 2× unrolled 64-byte lanes, mirroring the AVX2 kernel's shape.
    while off + 128 <= len {
        let mut a = _mm512_loadu_si512(srcs[0].add(off) as *const _);
        let mut b = _mm512_loadu_si512(srcs[0].add(off + 64) as *const _);
        for s in &srcs[1..] {
            a = _mm512_xor_si512(a, _mm512_loadu_si512(s.add(off) as *const _));
            b = _mm512_xor_si512(b, _mm512_loadu_si512(s.add(off + 64) as *const _));
        }
        _mm512_storeu_si512(dst.add(off) as *mut _, a);
        _mm512_storeu_si512(dst.add(off + 64) as *mut _, b);
        off += 128;
    }
    while off + 64 <= len {
        let mut a = _mm512_loadu_si512(srcs[0].add(off) as *const _);
        for s in &srcs[1..] {
            a = _mm512_xor_si512(a, _mm512_loadu_si512(s.add(off) as *const _));
        }
        _mm512_storeu_si512(dst.add(off) as *mut _, a);
        off += 64;
    }
    if off < len {
        xor_wide64(dst, srcs, off, len - off);
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn xor_neon(dst: *mut u8, srcs: &[*const u8], len: usize) {
    use std::arch::aarch64::*;
    let mut off = 0;
    // 4× unrolled 16-byte lanes: NEON registers are narrow, so deeper
    // unrolling is what buys instruction-level parallelism here.
    while off + 64 <= len {
        let mut a = vld1q_u8(srcs[0].add(off));
        let mut b = vld1q_u8(srcs[0].add(off + 16));
        let mut c = vld1q_u8(srcs[0].add(off + 32));
        let mut d = vld1q_u8(srcs[0].add(off + 48));
        for s in &srcs[1..] {
            a = veorq_u8(a, vld1q_u8(s.add(off)));
            b = veorq_u8(b, vld1q_u8(s.add(off + 16)));
            c = veorq_u8(c, vld1q_u8(s.add(off + 32)));
            d = veorq_u8(d, vld1q_u8(s.add(off + 48)));
        }
        vst1q_u8(dst.add(off), a);
        vst1q_u8(dst.add(off + 16), b);
        vst1q_u8(dst.add(off + 32), c);
        vst1q_u8(dst.add(off + 48), d);
        off += 64;
    }
    while off + 16 <= len {
        let mut a = vld1q_u8(srcs[0].add(off));
        for s in &srcs[1..] {
            a = veorq_u8(a, vld1q_u8(s.add(off)));
        }
        vst1q_u8(dst.add(off), a);
        off += 16;
    }
    if off < len {
        xor_wide64(dst, srcs, off, len - off);
    }
}

/// Safe convenience wrapper over slices, used by tests and small callers.
///
/// # Panics
/// Panics if lengths differ or `srcs` is empty.
pub fn xor_slices(kernel: Kernel, dst: &mut [u8], srcs: &[&[u8]]) {
    assert!(!srcs.is_empty(), "XOR of zero sources is undefined");
    for s in srcs {
        assert_eq!(s.len(), dst.len(), "length mismatch");
    }
    let ptrs: Vec<*const u8> = srcs.iter().map(|s| s.as_ptr()).collect();
    unsafe { xor_into(kernel, dst.as_mut_ptr(), &ptrs, dst.len()) }
}

/// In-place accumulation `dst ^= src` with the given kernel.
///
/// Delta parity updates end with exactly this step: XOR a freshly
/// computed delta-parity strip into the stored parity shard. The
/// destination aliases itself as the first source at the *same* address,
/// the one aliasing form every kernel supports (pebble reuse).
///
/// # Panics
/// Panics if the lengths differ.
pub fn xor_accumulate(kernel: Kernel, dst: &mut [u8], src: &[u8]) {
    assert_eq!(src.len(), dst.len(), "length mismatch");
    if dst.is_empty() {
        return;
    }
    // Derive the aliased read pointer from the *mutable* borrow so both
    // pointers share one provenance (a later as_mut_ptr would invalidate
    // a shared as_ptr tag under Stacked Borrows).
    let d = dst.as_mut_ptr();
    let srcs = [d as *const u8, src.as_ptr()];
    unsafe { xor_into(kernel, d, &srcs, dst.len()) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kernels() -> Vec<Kernel> {
        available_kernels()
    }

    fn reference_xor(srcs: &[&[u8]]) -> Vec<u8> {
        let mut out = srcs[0].to_vec();
        for s in &srcs[1..] {
            for (d, x) in out.iter_mut().zip(*s) {
                *d ^= x;
            }
        }
        out
    }

    #[test]
    fn kernels_agree_with_reference_across_lengths_and_arities() {
        // Odd lengths exercise every tail path (64/32/8/1 bytes).
        for len in [0usize, 1, 7, 8, 31, 32, 33, 63, 64, 65, 127, 200, 1024, 4097] {
            for arity in 1..=9usize {
                let srcs: Vec<Vec<u8>> = (0..arity)
                    .map(|a| (0..len).map(|i| (i as u8).wrapping_mul(a as u8 + 3) ^ 0x5A).collect())
                    .collect();
                let refs: Vec<&[u8]> = srcs.iter().map(Vec::as_slice).collect();
                let expect = reference_xor(&refs);
                for k in all_kernels() {
                    let mut dst = vec![0u8; len];
                    xor_slices(k, &mut dst, &refs);
                    assert_eq!(dst, expect, "kernel {k:?} len {len} arity {arity}");
                }
            }
        }
    }

    #[test]
    fn exact_aliasing_accumulates_in_place() {
        // dst == srcs[0]: p ← ⊕(p, q) must behave like p ^= q.
        for k in all_kernels() {
            let mut p: Vec<u8> = (0..100u8).collect();
            let q: Vec<u8> = (0..100u8).map(|i| i.wrapping_mul(7)).collect();
            let expect: Vec<u8> = p.iter().zip(&q).map(|(a, b)| a ^ b).collect();
            let ptrs = [p.as_ptr(), q.as_ptr()];
            unsafe { xor_into(k, p.as_mut_ptr(), &ptrs, 100) };
            assert_eq!(p, expect, "kernel {k:?}");
        }
    }

    #[test]
    fn xor_accumulate_matches_manual_xor() {
        for k in all_kernels() {
            for len in [0usize, 1, 7, 64, 100, 1025] {
                let mut dst: Vec<u8> = (0..len).map(|i| (i * 13) as u8).collect();
                let src: Vec<u8> = (0..len).map(|i| (i * 31 + 5) as u8).collect();
                let expect: Vec<u8> = dst.iter().zip(&src).map(|(a, b)| a ^ b).collect();
                xor_accumulate(k, &mut dst, &src);
                assert_eq!(dst, expect, "kernel {k:?} len {len}");
            }
        }
    }

    #[test]
    fn single_source_is_copy() {
        for k in all_kernels() {
            let src: Vec<u8> = (0..50u8).collect();
            let mut dst = vec![0u8; 50];
            xor_slices(k, &mut dst, &[&src]);
            assert_eq!(dst, src);
        }
    }

    #[test]
    fn self_copy_is_noop() {
        let mut buf: Vec<u8> = (0..64u8).collect();
        let ptr = buf.as_ptr();
        unsafe { xor_into(Kernel::Wide64, buf.as_mut_ptr(), &[ptr], 64) };
        assert_eq!(buf, (0..64u8).collect::<Vec<u8>>());
    }

    #[test]
    fn auto_resolves_to_something_concrete() {
        let k = Kernel::Auto.resolve();
        assert_ne!(k, Kernel::Auto);
    }

    #[test]
    fn xor_is_involutive_through_kernels() {
        // (a ⊕ b) ⊕ b = a for every kernel — a cheap end-to-end sanity.
        for k in all_kernels() {
            let a: Vec<u8> = (0..777).map(|i| (i * 31 % 251) as u8).collect();
            let b: Vec<u8> = (0..777).map(|i| (i * 17 % 255) as u8).collect();
            let mut t = vec![0u8; 777];
            xor_slices(k, &mut t, &[&a, &b]);
            let mut back = vec![0u8; 777];
            xor_slices(k, &mut back, &[&t, &b]);
            assert_eq!(back, a);
        }
    }

    #[test]
    #[should_panic(expected = "zero sources")]
    fn empty_sources_panics() {
        let mut dst = [0u8; 4];
        xor_slices(Kernel::Scalar, &mut dst, &[]);
    }
}
