//! Kernel equivalence matrix: every kernel this CPU can run must produce
//! byte-identical XOR results, whatever the length, alignment or source
//! arity.
//!
//! The SIMD kernels (`xor8`, `xor32`, `xor64`, `xor16`) each have three
//! code paths — the unrolled vector loop, the single-vector loop, and
//! the scalar tail — and the bugs live at the seams: a length just under
//! a vector width, a buffer starting at an odd address, a tail of 1–7
//! bytes. These tests sweep exactly those seams against an independent
//! byte-at-a-time reference (not `Kernel::Scalar`, so a shared bug
//! cannot cancel out).

use proptest::prelude::*;
use xor_runtime::{available_kernels, xor_accumulate, xor_slices, Kernel};

/// Independent reference: plain byte-wise XOR, no shared code with the
/// kernels under test.
fn reference_xor(srcs: &[&[u8]]) -> Vec<u8> {
    let mut out = vec![0u8; srcs[0].len()];
    for s in srcs {
        for (o, b) in out.iter_mut().zip(s.iter()) {
            *o ^= b;
        }
    }
    out
}

/// Deterministic but non-uniform fill so lane swaps and off-by-ones
/// cannot produce the right answer by accident.
fn fill(buf: &mut [u8], seed: usize) {
    for (i, b) in buf.iter_mut().enumerate() {
        *b = ((i * 131 + seed * 239 + 17) % 251) as u8;
    }
}

/// Run one (kernel, len, arity, misalignment) cell of the matrix.
fn check_cell(kernel: Kernel, len: usize, n_srcs: usize, misalign: usize) {
    // Over-allocate and slice at `misalign` so the kernels see buffers
    // that start off the natural vector alignment.
    let backing: Vec<Vec<u8>> = (0..n_srcs)
        .map(|s| {
            let mut v = vec![0u8; len + misalign];
            fill(&mut v, s + 1);
            v
        })
        .collect();
    let srcs: Vec<&[u8]> = backing.iter().map(|v| &v[misalign..]).collect();

    let mut dst_backing = vec![0xAAu8; len + misalign];
    let dst = &mut dst_backing[misalign..];
    xor_slices(kernel, dst, &srcs);

    assert_eq!(
        dst,
        &reference_xor(&srcs)[..],
        "kernel {} diverges at len={len} srcs={n_srcs} misalign={misalign}",
        kernel.name()
    );
}

/// Every seam length for every kernel: vector widths ±1, unroll widths
/// ±1, odd tails, and zero.
#[test]
fn seam_lengths_match_reference_for_every_kernel() {
    let lens = [
        0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 129, 191, 255, 256,
        257, 511, 1023, 1024, 1025, 4095, 4096, 4097,
    ];
    for kernel in available_kernels() {
        for &len in &lens {
            for n_srcs in 1..=8 {
                check_cell(kernel, len, n_srcs, 0);
            }
        }
    }
}

/// The same seams with the buffers deliberately knocked off alignment —
/// every kernel uses unaligned loads/stores, so an odd base address must
/// change nothing.
#[test]
fn misaligned_buffers_match_reference_for_every_kernel() {
    let lens = [1, 15, 63, 64, 65, 127, 128, 129, 255, 1024, 4097];
    for kernel in available_kernels() {
        for &len in &lens {
            for misalign in [1, 3, 7] {
                for n_srcs in [1, 2, 5, 8] {
                    check_cell(kernel, len, n_srcs, misalign);
                }
            }
        }
    }
}

/// The aliasing accumulate form (`dst ^= src`) every delta-parity update
/// ends with must also agree across kernels.
#[test]
fn accumulate_matches_reference_for_every_kernel() {
    for kernel in available_kernels() {
        for len in [0usize, 1, 7, 64, 65, 127, 1000, 4097] {
            let mut dst = vec![0u8; len];
            let mut src = vec![0u8; len];
            fill(&mut dst, 3);
            fill(&mut src, 9);
            let expect = reference_xor(&[&dst, &src]);
            xor_accumulate(kernel, &mut dst, &src);
            assert_eq!(dst, expect, "accumulate diverges for {}", kernel.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random lengths, arities and misalignments: whatever the shape,
    /// all available kernels agree with the byte-wise reference.
    #[test]
    fn random_shapes_match_reference(
        len in 0usize..5000,
        n_srcs in 1usize..=8,
        misalign in 0usize..8,
    ) {
        for kernel in available_kernels() {
            check_cell(kernel, len, n_srcs, misalign);
        }
    }

    /// All kernels also agree with *each other* on random data (pairwise
    /// through the reference is implied; this pins the cross-kernel
    /// equality the autotuner relies on when it swaps kernels).
    #[test]
    fn kernels_agree_pairwise(len in 1usize..3000, n_srcs in 1usize..=8) {
        let backing: Vec<Vec<u8>> = (0..n_srcs)
            .map(|s| {
                let mut v = vec![0u8; len];
                fill(&mut v, s + 42);
                v
            })
            .collect();
        let srcs: Vec<&[u8]> = backing.iter().map(|v| &v[..]).collect();
        let mut first: Option<(Kernel, Vec<u8>)> = None;
        for kernel in available_kernels() {
            let mut dst = vec![0u8; len];
            xor_slices(kernel, &mut dst, &srcs);
            match &first {
                None => first = Some((kernel, dst)),
                Some((k0, d0)) => prop_assert_eq!(
                    &dst, d0,
                    "{} and {} disagree at len={}", kernel.name(), k0.name(), len
                ),
            }
        }
    }
}
