//! `ec-tune`: the per-machine kernel autotuner.
//!
//! The paper's §7 shows that the best XOR kernel and blocking parameter
//! `B` are machine properties — SIMD width, cache geometry and core
//! count move the optimum — and reports them as offline tables. This
//! crate turns those tables into a live subsystem: on first use it
//! micro-benchmarks kernel × blocksize × stripe-count with the real
//! RS(10,4) parity program ([`tune`]), persists the winner to a
//! versioned, CRC-protected cache file ([`Profile`]), and serves it as
//! the engine default ([`engine_defaults`]) that `RsConfig::new` — and
//! therefore the registry, archives, clusters and CLIs — starts from.
//!
//! Precedence, lowest to highest: static paper defaults < tuned profile
//! < environment (`XORSLP_KERNEL`, `XORSLP_BLOCKSIZE`,
//! `XORSLP_PARALLELISM`) < explicit config calls. The profile never
//! overrides anything a human asked for.
//!
//! Trust rules for the cache file are strict: corrupt, truncated,
//! stale-version or foreign-machine profiles are silently re-tuned —
//! a damaged cache can cost one re-benchmark, never correctness.
//!
//! Environment:
//! * `XORSLP_TUNE=off` (also `0`/`false`) — disable the autotuner
//!   entirely; defaults fall back to the static paper values.
//! * `XORSLP_TUNE_DIR=<dir>` — cache directory override. Default:
//!   `$HOME/.xorslp-ec`, falling back to a per-user directory under the
//!   system temp dir when `HOME` is unset.

mod profile;
mod tuner;

pub use profile::{Profile, ProfileError, TuneSample, MAGIC, VERSION};
pub use tuner::{tune, tune_count, TuneOptions};

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use xor_runtime::{available_kernels, default_parallelism, Kernel};

/// The static defaults from the paper, used when tuning is disabled and
/// as the base the profile refines: §6.1's `B = 1024` sweet spot, kernel
/// auto-detection, machine-sized pool.
pub const PAPER_BLOCKSIZE: usize = 1024;

/// Is the autotuner enabled? (`XORSLP_TUNE=off|0|false` disables it.)
pub fn tuning_enabled() -> bool {
    match std::env::var("XORSLP_TUNE") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "off" | "0" | "false" | "no"
        ),
        Err(_) => true,
    }
}

/// This machine's tuning identity: architecture, the kernels this CPU
/// can run, the worker-pool width, and the build flavor (debug timings
/// must never steer a release process, or vice versa). A cached profile
/// whose fingerprint differs is re-tuned.
pub fn machine_fingerprint() -> String {
    let kernels: Vec<&str> = available_kernels().iter().map(|k| k.name()).collect();
    format!(
        "{}|{}|w{}|{}",
        std::env::consts::ARCH,
        kernels.join(","),
        default_parallelism(),
        if cfg!(debug_assertions) { "dbg" } else { "rel" }
    )
}

/// The profile cache directory: `$XORSLP_TUNE_DIR`, else
/// `$HOME/.xorslp-ec`, else a per-user dir under the system temp dir.
pub fn tune_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("XORSLP_TUNE_DIR") {
        if !dir.trim().is_empty() {
            return PathBuf::from(dir);
        }
    }
    if let Ok(home) = std::env::var("HOME") {
        if !home.trim().is_empty() {
            return Path::new(&home).join(".xorslp-ec");
        }
    }
    std::env::temp_dir().join("xorslp-ec")
}

/// The profile cache file for *this* machine. The file name embeds a
/// hash of the fingerprint, so a home directory shared across
/// heterogeneous machines holds one profile per machine instead of the
/// machines endlessly re-tuning over each other's cache.
pub fn profile_path() -> PathBuf {
    tune_dir().join(format!(
        "profile-{:08x}.tune",
        ec_wire::crc32(machine_fingerprint().as_bytes())
    ))
}

/// Per-path once-cells: concurrent first use from any number of threads
/// runs the micro-benchmark exactly once per cache path (later callers
/// block on the winner and share its `Arc`).
fn cell_for(path: &Path) -> Arc<OnceLock<Arc<Profile>>> {
    type CellMap = HashMap<PathBuf, Arc<OnceLock<Arc<Profile>>>>;
    static CELLS: OnceLock<Mutex<CellMap>> = OnceLock::new();
    let cells = CELLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cells.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    map.entry(path.to_path_buf()).or_default().clone()
}

/// Load the profile cached at `path`, or run the micro-benchmark and
/// cache the result there. In-process, concurrent calls for the same
/// path tune at most once; on disk, the write is atomic (tmp + rename)
/// so racing *processes* can both tune but never corrupt the cache.
///
/// Any failure to load (missing, corrupt, truncated, stale version,
/// foreign machine) re-tunes; failure to *write* the cache is ignored —
/// the freshly measured profile is still returned and only the next
/// process pays again.
pub fn load_or_tune_at(path: &Path) -> Arc<Profile> {
    load_or_tune_at_with(path, &TuneOptions::default())
}

/// [`load_or_tune_at`] with an explicit workload shape — the hook the
/// cache-invalidation tests use to keep the forced re-tunes fast.
pub fn load_or_tune_at_with(path: &Path, opts: &TuneOptions) -> Arc<Profile> {
    cell_for(path)
        .get_or_init(|| {
            let fp = machine_fingerprint();
            match Profile::load(path, &fp) {
                Ok(p) => Arc::new(p),
                Err(_) => {
                    let p = tune(opts);
                    let _ = p.store(path);
                    Arc::new(p)
                }
            }
        })
        .clone()
}

/// The process-wide tuned profile, or `None` when `XORSLP_TUNE` turns
/// the autotuner off. First call on a cold machine runs the
/// micro-benchmark (well under a second); warm starts load the cache
/// file once and every later call is an `Arc` clone.
pub fn profile() -> Option<Arc<Profile>> {
    if !tuning_enabled() {
        return None;
    }
    Some(load_or_tune_at(&profile_path()))
}

/// Engine defaults fed to codec construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineDefaults {
    /// Default XOR kernel.
    pub kernel: Kernel,
    /// Default blocking parameter `B` in bytes.
    pub blocksize: usize,
    /// Default parallelism knob (`0` = machine-sized global pool).
    pub parallelism: usize,
}

impl EngineDefaults {
    /// The static paper defaults (what the engine shipped with before
    /// the autotuner existed).
    pub const PAPER: EngineDefaults = EngineDefaults {
        kernel: Kernel::Auto,
        blocksize: PAPER_BLOCKSIZE,
        parallelism: 0,
    };
}

/// The defaults `RsConfig::new` starts from: the tuned profile when the
/// autotuner is enabled, the static paper defaults otherwise.
/// Environment variables and explicit config calls are applied *on top*
/// by the config layer — this function is the bottom of the precedence
/// chain.
pub fn engine_defaults() -> EngineDefaults {
    match profile() {
        Some(p) => EngineDefaults {
            kernel: p.kernel,
            // A winning stripe count at (or beyond) the machine width
            // means "use the shared global pool"; below it, a dedicated
            // pool of exactly that width won the measurement.
            parallelism: if p.stripes >= default_parallelism() {
                0
            } else {
                p.stripes
            },
            blocksize: p.blocksize,
        },
        None => EngineDefaults::PAPER,
    }
}

/// Human-readable report for the CLIs' `tune` subcommand: the chosen
/// configuration, where it is cached, and the measured candidate table
/// (winner marked, sorted fastest-first).
pub fn format_report(p: &Profile, path: &Path, source: &str) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "machine:    {}", p.fingerprint);
    let _ = writeln!(out, "profile:    {} ({source})", path.display());
    let _ = writeln!(out, "kernel:     {}", p.kernel.name());
    let _ = writeln!(out, "blocksize:  {}", p.blocksize);
    let _ = writeln!(
        out,
        "stripes:    {}{}",
        p.stripes,
        if p.stripes >= default_parallelism() {
            " (machine width: shared global pool)"
        } else {
            ""
        }
    );
    let mut samples: Vec<&TuneSample> = p.samples.iter().collect();
    samples.sort_by_key(|s| std::cmp::Reverse(s.mib_per_s));
    let _ = writeln!(out, "candidates ({} measured):", samples.len());
    for s in samples {
        let chosen = s.kernel == p.kernel.name()
            && s.blocksize as usize == p.blocksize
            && s.stripes as usize == p.stripes;
        let _ = writeln!(
            out,
            "  {:>6}  B={:<5} stripes={:<2} {:>8} MiB/s{}",
            s.kernel,
            s.blocksize,
            s.stripes,
            s.mib_per_s,
            if chosen { "  <- chosen" } else { "" }
        );
    }
    out
}

/// The whole `tune` subcommand shared by `xorslp-archive` and
/// `xorslp-store`: load-or-tune (or force a fresh measurement), persist,
/// and return the printable report.
pub fn cli_tune(force: bool) -> String {
    let path = profile_path();
    let before = tune_count();
    let (p, source) = if force {
        let p = Arc::new(tune(&TuneOptions::default()));
        (p, "re-tuned (--force)")
    } else {
        let p = load_or_tune_at(&path);
        (
            p,
            if tune_count() > before {
                "freshly tuned"
            } else {
                "cached"
            },
        )
    };
    if force {
        if let Err(e) = p.store(&path) {
            eprintln!("warning: could not write profile cache: {e}");
        }
    }
    format_report(&p, &path, source)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_names_the_winner_and_every_sample() {
        let p = Profile {
            fingerprint: "fp".into(),
            kernel: Kernel::Wide64,
            blocksize: 2048,
            stripes: 1,
            samples: vec![
                TuneSample {
                    kernel: "xor1".into(),
                    blocksize: 1024,
                    stripes: 1,
                    mib_per_s: 900,
                },
                TuneSample {
                    kernel: "xor8".into(),
                    blocksize: 2048,
                    stripes: 1,
                    mib_per_s: 4200,
                },
            ],
        };
        let r = format_report(&p, Path::new("/tmp/x.tune"), "cached");
        assert!(r.contains("kernel:     xor8"));
        assert!(r.contains("blocksize:  2048"));
        assert!(r.contains("<- chosen"));
        assert!(r.contains("xor1") && r.contains("900"));
        // Sorted fastest-first: the winner line precedes the scalar line.
        assert!(r.find("4200").unwrap() < r.find("900 ").unwrap());
    }

    #[test]
    fn fingerprint_names_arch_kernels_width_and_flavor() {
        let fp = machine_fingerprint();
        assert!(fp.contains(std::env::consts::ARCH));
        assert!(fp.contains("xor1") && fp.contains("xor8"));
        assert!(fp.contains(&format!("w{}", default_parallelism())));
        assert!(fp.ends_with("dbg") || fp.ends_with("rel"));
    }

    #[test]
    fn paper_defaults_are_the_documented_constants() {
        assert_eq!(
            EngineDefaults::PAPER,
            EngineDefaults {
                kernel: Kernel::Auto,
                blocksize: 1024,
                parallelism: 0,
            }
        );
    }

    #[test]
    fn profile_path_is_under_tune_dir_and_fingerprint_keyed() {
        let p = profile_path();
        assert!(p.starts_with(tune_dir()));
        let name = p.file_name().unwrap().to_str().unwrap();
        assert!(name.starts_with("profile-") && name.ends_with(".tune"));
    }
}
