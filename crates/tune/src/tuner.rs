//! The micro-benchmark behind the profile: measure kernel × blocksize ×
//! stripe-count on the machine's actual CPU and pick the winner.
//!
//! The workload is the real thing, not a synthetic loop: the RS(10,4)
//! parity program — GF(2^8) matrix → bit matrix → SLP → `FULL_DFS`
//! optimization — executed by the same blocked interpreter production
//! encodes run through. §7's finding is that the best (kernel, B) pair
//! is a *machine* property (cache sizes, SIMD width, core count), which
//! is exactly why this runs once per machine and is cached.

use crate::profile::{Profile, TuneSample};
use gf256::{encoding_matrix, MatrixKind};
use slp_optimizer::{optimize, OptConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use xor_runtime::{available_kernels, default_parallelism, ExecPool, ExecProgram, Kernel};

/// Process-wide count of *actual* micro-bench runs (cache loads do not
/// count). Tests and the `autotune` bench use it to prove that a warm
/// profile load does not re-tune.
static TUNE_COUNT: AtomicUsize = AtomicUsize::new(0);

/// How many times this process has run the micro-benchmark.
pub fn tune_count() -> usize {
    TUNE_COUNT.load(Ordering::SeqCst)
}

/// Tuning workload shape. The defaults measure the paper's headline
/// RS(10,4) code over 64 KiB shards — large enough that the winner
/// generalizes, small enough that a cold first use costs well under a
/// second.
#[derive(Clone, Debug)]
pub struct TuneOptions {
    /// Data shards of the benchmark code.
    pub data_shards: usize,
    /// Parity shards of the benchmark code.
    pub parity_shards: usize,
    /// Shard length in bytes (must be a multiple of 8 for the bit-packet
    /// layout).
    pub shard_len: usize,
    /// Candidate blocking parameters.
    pub blocksizes: Vec<usize>,
    /// Timed iterations per candidate (best-of; one extra warmup run).
    pub iters: usize,
}

impl Default for TuneOptions {
    fn default() -> TuneOptions {
        TuneOptions {
            data_shards: 10,
            parity_shards: 4,
            shard_len: 64 * 1024,
            blocksizes: vec![512, 1024, 2048, 4096, 8192],
            iters: 3,
        }
    }
}

/// Stripe-count candidates for this machine: serial, plus the machine
/// width when it has more than one core.
fn stripe_candidates() -> Vec<usize> {
    let w = default_parallelism();
    if w > 1 {
        vec![1, w]
    } else {
        vec![1]
    }
}

/// Run the micro-benchmark and return the measured profile (pure
/// compute: no files are read or written — see `load_or_tune_at` for the
/// cached entry point).
pub fn tune(opts: &TuneOptions) -> Profile {
    TUNE_COUNT.fetch_add(1, Ordering::SeqCst);
    let (n, p) = (opts.data_shards, opts.parity_shards);
    assert!(
        opts.shard_len > 0 && opts.shard_len.is_multiple_of(8),
        "shard_len must be a positive multiple of 8"
    );
    assert!(!opts.blocksizes.is_empty(), "need at least one blocksize candidate");

    // The real parity pipeline, same as codec construction.
    let matrix = encoding_matrix(MatrixKind::IsalPower, n, p);
    let parity_rows: Vec<usize> = (n..n + p).collect();
    let bits = bitmatrix::BitMatrix::expand_gf_matrix(&matrix.select_rows(&parity_rows));
    let slp = optimize(&slp::binary_slp_from_bitmatrix(&bits), OptConfig::FULL_DFS);

    // Deterministic non-trivial inputs; 8 bit-packets per shard.
    let pl = opts.shard_len / 8;
    let data: Vec<Vec<u8>> = (0..n)
        .map(|s| {
            (0..opts.shard_len)
                .map(|i| ((i * 131 + s * 239) % 251) as u8)
                .collect()
        })
        .collect();
    let inputs: Vec<&[u8]> = data.iter().flat_map(|s| s.chunks_exact(pl)).collect();
    let mut parity = vec![vec![0u8; opts.shard_len]; p];

    let pool = ExecPool::global();
    let data_bytes = (n * opts.shard_len) as f64;
    let mut samples = Vec::new();
    let mut best: Option<(u64, Kernel, usize, usize)> = None;

    for kernel in available_kernels() {
        for &bs in &opts.blocksizes {
            let prog = ExecProgram::compile(&slp, bs, kernel);
            for &stripes in &stripe_candidates() {
                let mut best_elapsed = f64::INFINITY;
                // One warmup (page in buffers, grow arenas), then timed.
                for iter in 0..=opts.iters {
                    let mut outputs: Vec<&mut [u8]> = parity
                        .iter_mut()
                        .flat_map(|s| s.chunks_exact_mut(pl))
                        .collect();
                    let t0 = Instant::now();
                    prog.run_striped(&inputs, &mut outputs, pool, stripes)
                        .expect("tuning workload shapes are valid by construction");
                    let dt = t0.elapsed().as_secs_f64();
                    if iter > 0 && dt < best_elapsed {
                        best_elapsed = dt;
                    }
                }
                let mib_per_s = (data_bytes / best_elapsed / (1024.0 * 1024.0)) as u64;
                samples.push(TuneSample {
                    kernel: kernel.name().to_string(),
                    blocksize: bs as u32,
                    stripes: stripes as u32,
                    mib_per_s,
                });
                if best.is_none_or(|(b, ..)| mib_per_s > b) {
                    best = Some((mib_per_s, kernel, bs, stripes));
                }
            }
        }
    }

    let (_, kernel, blocksize, stripes) =
        best.expect("at least one candidate was measured");
    Profile {
        fingerprint: crate::machine_fingerprint(),
        kernel,
        blocksize,
        stripes,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> TuneOptions {
        TuneOptions {
            data_shards: 4,
            parity_shards: 2,
            shard_len: 4096,
            blocksizes: vec![256, 512],
            iters: 1,
        }
    }

    #[test]
    fn tune_measures_every_candidate_and_picks_a_winner() {
        let before = tune_count();
        let p = tune(&quick_opts());
        assert_eq!(tune_count(), before + 1);
        let expect = available_kernels().len() * 2 * stripe_candidates().len();
        assert_eq!(p.samples.len(), expect);
        assert!(p.kernel.is_available());
        assert!([256, 512].contains(&p.blocksize));
        assert!(p.stripes >= 1);
        assert_eq!(p.fingerprint, crate::machine_fingerprint());
        // The recorded winner really is the argmax of the samples.
        let max = p.samples.iter().map(|s| s.mib_per_s).max().unwrap();
        let winner = p
            .samples
            .iter()
            .find(|s| {
                s.kernel == p.kernel.name()
                    && s.blocksize as usize == p.blocksize
                    && s.stripes as usize == p.stripes
            })
            .expect("winner must be one of the samples");
        assert_eq!(winner.mib_per_s, max);
    }
}
