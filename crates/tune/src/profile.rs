//! The on-disk tuning profile: a small versioned binary record protected
//! by a CRC-32 trailer.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic        8  b"XSLPTUN1"
//! version      u32   — bumped whenever the format or the tuner's
//!                      methodology changes; old versions are re-tuned
//! fingerprint  str   — arch + available kernels + worker count + build
//! kernel       str   — winning kernel name ("xor64", …)
//! blocksize    u32   — winning blocking parameter B
//! stripes      u32   — winning stripe count
//! n_samples    u32
//! sample × n   str kernel, u32 blocksize, u32 stripes, u64 MiB/s
//! crc32        u32   — ec-wire CRC-32 of every preceding byte
//! ```
//!
//! Strings are `u32` length + UTF-8 bytes. The trust rules are strict:
//! a profile is used only if the CRC matches, the magic and version are
//! current, the fingerprint equals this machine's, and the winning
//! kernel is available on this CPU. *Any* other outcome — corruption,
//! truncation, a stale version, another machine's cache — re-tunes;
//! a damaged profile is never an error the caller sees.

use ec_wire::crc32;
use std::fmt;
use std::io::Write;
use std::path::Path;
use xor_runtime::Kernel;

/// File magic, also serving as a human-greppable header.
pub const MAGIC: [u8; 8] = *b"XSLPTUN1";

/// Current profile format version.
pub const VERSION: u32 = 1;

/// One measured candidate configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TuneSample {
    /// Kernel name (`Kernel::name` form: `xor1`, `xor8`, `xor32`, …).
    pub kernel: String,
    /// Blocking parameter `B` in bytes.
    pub blocksize: u32,
    /// Stripe count the sample ran with.
    pub stripes: u32,
    /// Measured encode throughput in MiB/s (data bytes / best run).
    pub mib_per_s: u64,
}

/// A machine's tuning result: the winning configuration plus every
/// sample that was measured (kept for `tune` subcommand reports and
/// bench baselines).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Profile {
    /// The machine fingerprint the profile was measured on.
    pub fingerprint: String,
    /// Winning kernel.
    pub kernel: Kernel,
    /// Winning blocksize in bytes.
    pub blocksize: usize,
    /// Winning stripe count.
    pub stripes: usize,
    /// All measured candidates, in measurement order.
    pub samples: Vec<TuneSample>,
}

/// Why a profile file was rejected. Callers treat every variant the same
/// way — re-tune — but the variant names the cause for diagnostics.
#[derive(Debug)]
pub enum ProfileError {
    /// The file could not be read at all.
    Io(std::io::Error),
    /// CRC mismatch, truncation, bad magic, or a malformed field.
    Corrupt(String),
    /// A well-formed profile from a different format version.
    StaleVersion(u32),
    /// A well-formed profile from a different machine or build.
    WrongMachine(String),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Io(e) => write!(f, "cannot read profile: {e}"),
            ProfileError::Corrupt(why) => write!(f, "profile corrupt: {why}"),
            ProfileError::StaleVersion(v) => {
                write!(f, "profile version {v} != current {VERSION}")
            }
            ProfileError::WrongMachine(fp) => {
                write!(f, "profile fingerprint {fp:?} is not this machine")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProfileError> {
        if self.buf.len() - self.at < n {
            return Err(ProfileError::Corrupt("truncated field".into()));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, ProfileError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProfileError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, ProfileError> {
        let len = self.u32()? as usize;
        // An absurd length is corruption, not an allocation request.
        if len > 1 << 20 {
            return Err(ProfileError::Corrupt(format!("string length {len}")));
        }
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| ProfileError::Corrupt("non-UTF-8 string".into()))
    }
}

impl Profile {
    /// Serialize with the given format version (the current [`VERSION`]
    /// in normal operation; tests pass other values to exercise the
    /// version-bump invalidation path).
    pub fn to_bytes_versioned(&self, version: u32) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.samples.len() * 32);
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, version);
        put_str(&mut out, &self.fingerprint);
        put_str(&mut out, self.kernel.name());
        put_u32(&mut out, self.blocksize as u32);
        put_u32(&mut out, self.stripes as u32);
        put_u32(&mut out, self.samples.len() as u32);
        for s in &self.samples {
            put_str(&mut out, &s.kernel);
            put_u32(&mut out, s.blocksize);
            put_u32(&mut out, s.stripes);
            put_u64(&mut out, s.mib_per_s);
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Serialize at the current format version.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_versioned(VERSION)
    }

    /// Parse and validate a profile image. `expect_fingerprint` is this
    /// machine's fingerprint; a mismatch is [`ProfileError::WrongMachine`].
    pub fn from_bytes(buf: &[u8], expect_fingerprint: &str) -> Result<Profile, ProfileError> {
        // CRC first: anything inside a damaged file is untrusted,
        // including the fields that would name the damage.
        if buf.len() < MAGIC.len() + 4 + 4 {
            return Err(ProfileError::Corrupt("file too short".into()));
        }
        let (body, trailer) = buf.split_at(buf.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().unwrap());
        if crc32(body) != stored {
            return Err(ProfileError::Corrupt("CRC mismatch".into()));
        }
        let mut c = Cursor { buf: body, at: 0 };
        if c.take(MAGIC.len())? != MAGIC {
            return Err(ProfileError::Corrupt("bad magic".into()));
        }
        let version = c.u32()?;
        if version != VERSION {
            return Err(ProfileError::StaleVersion(version));
        }
        let fingerprint = c.str()?;
        if fingerprint != expect_fingerprint {
            return Err(ProfileError::WrongMachine(fingerprint));
        }
        let kernel_name = c.str()?;
        let kernel = Kernel::parse(&kernel_name)
            .ok_or_else(|| ProfileError::Corrupt(format!("unknown kernel {kernel_name:?}")))?;
        if !kernel.is_available() {
            // Fingerprint equality should already imply availability;
            // belt and braces — never hand out a kernel we cannot run.
            return Err(ProfileError::WrongMachine(fingerprint));
        }
        let blocksize = c.u32()? as usize;
        let stripes = c.u32()? as usize;
        if blocksize == 0 || stripes == 0 {
            return Err(ProfileError::Corrupt("zero blocksize or stripes".into()));
        }
        let n = c.u32()? as usize;
        if n > 4096 {
            return Err(ProfileError::Corrupt(format!("sample count {n}")));
        }
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            samples.push(TuneSample {
                kernel: c.str()?,
                blocksize: c.u32()?,
                stripes: c.u32()?,
                mib_per_s: c.u64()?,
            });
        }
        if c.at != body.len() {
            return Err(ProfileError::Corrupt("trailing bytes".into()));
        }
        Ok(Profile {
            fingerprint,
            kernel,
            blocksize,
            stripes,
            samples,
        })
    }

    /// Load and validate the profile at `path`.
    pub fn load(path: &Path, expect_fingerprint: &str) -> Result<Profile, ProfileError> {
        let buf = std::fs::read(path).map_err(ProfileError::Io)?;
        Profile::from_bytes(&buf, expect_fingerprint)
    }

    /// Atomically write the profile to `path` (tmp file + rename, so a
    /// concurrent reader never observes a half-written cache). Creates
    /// the parent directory if needed.
    pub fn store(&self, path: &Path) -> std::io::Result<()> {
        self.store_versioned(path, VERSION)
    }

    /// [`Profile::store`] with an explicit format version — the hook the
    /// invalidation tests use to plant a stale-version cache with a
    /// *valid* CRC.
    pub fn store_versioned(&self, path: &Path, version: u32) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes_versioned(version))?;
            f.sync_all()?;
        }
        match std::fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile(fp: &str) -> Profile {
        Profile {
            fingerprint: fp.to_string(),
            kernel: Kernel::Wide64,
            blocksize: 2048,
            stripes: 1,
            samples: vec![
                TuneSample {
                    kernel: "xor1".into(),
                    blocksize: 1024,
                    stripes: 1,
                    mib_per_s: 900,
                },
                TuneSample {
                    kernel: "xor8".into(),
                    blocksize: 2048,
                    stripes: 1,
                    mib_per_s: 4200,
                },
            ],
        }
    }

    #[test]
    fn roundtrips_through_bytes() {
        let p = sample_profile("fp");
        let got = Profile::from_bytes(&p.to_bytes(), "fp").unwrap();
        assert_eq!(got, p);
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let p = sample_profile("fp");
        let bytes = p.to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                Profile::from_bytes(&bad, "fp").is_err(),
                "flip at byte {i} accepted"
            );
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let p = sample_profile("fp");
        let bytes = p.to_bytes();
        for len in 0..bytes.len() {
            assert!(
                Profile::from_bytes(&bytes[..len], "fp").is_err(),
                "truncation to {len} accepted"
            );
        }
    }

    #[test]
    fn version_bump_with_valid_crc_is_stale() {
        let p = sample_profile("fp");
        let bytes = p.to_bytes_versioned(VERSION + 1);
        match Profile::from_bytes(&bytes, "fp") {
            Err(ProfileError::StaleVersion(v)) => assert_eq!(v, VERSION + 1),
            other => panic!("expected StaleVersion, got {other:?}"),
        }
    }

    #[test]
    fn foreign_fingerprint_is_rejected() {
        let p = sample_profile("machine-a");
        match Profile::from_bytes(&p.to_bytes(), "machine-b") {
            Err(ProfileError::WrongMachine(fp)) => assert_eq!(fp, "machine-a"),
            other => panic!("expected WrongMachine, got {other:?}"),
        }
    }

    #[test]
    fn store_load_roundtrip_via_file() {
        let dir = std::env::temp_dir().join(format!("xorslp-tune-test-{}", std::process::id()));
        let path = dir.join("nested").join("cpu.profile");
        let p = sample_profile("fp");
        p.store(&path).unwrap();
        assert_eq!(Profile::load(&path, "fp").unwrap(), p);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
