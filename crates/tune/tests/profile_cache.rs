//! Profile cache trust rules, end to end: a damaged, truncated or
//! stale-version cache file must trigger a silent re-tune (never a panic,
//! never a stale profile trusted), and concurrent first use must tune
//! exactly once.
//!
//! Every test uses its own explicit cache path (no environment-variable
//! mutation, which would race across the test harness's threads) and the
//! process-wide [`tune_count`] probe to distinguish "loaded from disk"
//! from "re-measured". The probe is global, so the tests serialize on a
//! shared mutex.

use ec_tune::{
    load_or_tune_at_with, machine_fingerprint, tune, tune_count, Profile, TuneOptions, VERSION,
};
use std::path::PathBuf;
use std::sync::Mutex;

/// `tune_count()` is process-global; run the counting tests one at a
/// time so a neighbour's re-tune cannot perturb a delta assertion.
static SERIAL: Mutex<()> = Mutex::new(());

/// A workload small enough that a forced re-tune costs milliseconds.
fn quick_opts() -> TuneOptions {
    TuneOptions {
        data_shards: 4,
        parity_shards: 2,
        shard_len: 4096,
        blocksizes: vec![256, 512],
        iters: 1,
    }
}

/// A fresh cache path per scenario: `load_or_tune_at_with` memoizes per
/// path in-process, so reusing a path would observe the memo, not the
/// disk.
fn fresh_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xorslp-profile-cache-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}.tune"))
}

#[test]
fn valid_cache_file_loads_without_retuning() {
    let _guard = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let path = fresh_path("valid");
    // Plant a genuine profile the way a previous process would have.
    let planted = tune(&quick_opts());
    planted.store(&path).unwrap();

    let before = tune_count();
    let loaded = load_or_tune_at_with(&path, &quick_opts());
    assert_eq!(tune_count(), before, "a valid cache must not re-tune");
    assert_eq!(*loaded, planted);
}

#[test]
fn corrupt_byte_triggers_retune_and_rewrites_a_valid_cache() {
    let _guard = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let path = fresh_path("corrupt");
    let planted = tune(&quick_opts());
    planted.store(&path).unwrap();

    // Flip one byte in the middle of the file.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let before = tune_count();
    let p = load_or_tune_at_with(&path, &quick_opts());
    assert_eq!(tune_count(), before + 1, "corruption must force a re-tune");
    assert!(p.kernel.is_available());
    // The damaged file was replaced with a loadable one.
    let reread = Profile::load(&path, &machine_fingerprint()).unwrap();
    assert_eq!(reread, *p);
}

#[test]
fn truncation_triggers_retune() {
    let _guard = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let path = fresh_path("truncated");
    let planted = tune(&quick_opts());
    planted.store(&path).unwrap();

    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let before = tune_count();
    let p = load_or_tune_at_with(&path, &quick_opts());
    assert_eq!(tune_count(), before + 1, "truncation must force a re-tune");
    assert_eq!(
        Profile::load(&path, &machine_fingerprint()).unwrap(),
        *p,
        "the truncated file must be replaced with the fresh profile"
    );
}

#[test]
fn stale_version_triggers_retune_even_with_valid_crc() {
    let _guard = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let path = fresh_path("stale-version");
    // A well-formed profile — CRC intact — from a future/old format.
    tune(&quick_opts()).store_versioned(&path, VERSION + 1).unwrap();

    let before = tune_count();
    let p = load_or_tune_at_with(&path, &quick_opts());
    assert_eq!(tune_count(), before + 1, "a stale version must force a re-tune");
    // And the rewritten cache is at the *current* version.
    assert_eq!(Profile::load(&path, &machine_fingerprint()).unwrap(), *p);
}

#[test]
fn foreign_machine_profile_triggers_retune() {
    let _guard = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let path = fresh_path("foreign");
    let mut foreign = tune(&quick_opts());
    foreign.fingerprint = "some-other-arch|xor1|w64|rel".into();
    foreign.store(&path).unwrap();

    let before = tune_count();
    let p = load_or_tune_at_with(&path, &quick_opts());
    assert_eq!(tune_count(), before + 1, "another machine's cache must re-tune");
    assert_eq!(p.fingerprint, machine_fingerprint());
}

#[test]
fn concurrent_first_use_tunes_exactly_once() {
    let _guard = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let path = fresh_path("concurrent");
    let before = tune_count();
    let opts = quick_opts();

    let profiles: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..16)
            .map(|_| s.spawn(|| load_or_tune_at_with(&path, &opts)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(
        tune_count(),
        before + 1,
        "16 concurrent first uses must run the micro-benchmark once"
    );
    // Everybody got the same measurement (the same Arc, in fact).
    for p in &profiles[1..] {
        assert!(std::sync::Arc::ptr_eq(p, &profiles[0]));
    }
}
