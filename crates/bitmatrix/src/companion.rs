//! The companion map `~· : GF(2^8) → F2^{8×8}` and the bit isomorphism `𝔅`.

use crate::BitMatrix;
use gf256::Gf;

/// `𝔅`: the bits of a byte as a column vector, least-significant bit first
/// (bit `i` is the coefficient of `x^i` in the residue polynomial).
#[inline]
pub fn byte_to_bits(b: u8) -> [bool; 8] {
    std::array::from_fn(|i| b >> i & 1 == 1)
}

/// `𝔅⁻¹`: reassemble a byte from its bit column.
#[inline]
pub fn bits_to_byte(bits: &[bool]) -> u8 {
    assert_eq!(bits.len(), 8, "a GF(2^8) element has exactly 8 bits");
    bits.iter()
        .enumerate()
        .fold(0u8, |acc, (i, &b)| acc | (u8::from(b) << i))
}

/// The companion (multiplication) matrix of `x`: the 8×8 bit-matrix whose
/// column `j` is `𝔅(x ×_GF α^j)` — i.e. the image of the `j`-th basis
/// element under "multiply by `x`".
///
/// This is the `~·` map of the paper's §1; it is a ring homomorphism:
/// `companion(a·b) = companion(a)·companion(b)` and
/// `companion(a+b) = companion(a) ⊕ companion(b)`.
pub fn companion(x: Gf) -> BitMatrix {
    let mut m = BitMatrix::zero(8, 8);
    for j in 0..8u8 {
        let col = (x * Gf(1 << j)).0;
        for i in 0..8 {
            if col >> i & 1 == 1 {
                m.set(i, j as usize, true);
            }
        }
    }
    m
}

/// Apply an 8×8 bit-matrix to a byte through `𝔅` (test helper; slow).
pub fn apply_to_byte(m: &BitMatrix, y: u8) -> u8 {
    assert_eq!((m.rows(), m.cols()), (8, 8));
    let v = byte_to_bits(y);
    bits_to_byte(&m.mul_vec(&v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_iso_roundtrip() {
        for b in 0..=255u8 {
            assert_eq!(bits_to_byte(&byte_to_bits(b)), b);
        }
    }

    #[test]
    fn companion_of_one_is_identity() {
        assert_eq!(companion(Gf::ONE), BitMatrix::identity(8));
    }

    #[test]
    fn companion_of_zero_is_zero() {
        assert_eq!(companion(Gf::ZERO), BitMatrix::zero(8, 8));
    }

    #[test]
    fn companion_realizes_field_multiplication() {
        // The defining property (paper §1, property (ii)):
        // x ×_GF y = 𝔅⁻¹( x̃ · 𝔅(y) ), checked exhaustively on a grid.
        for x in (0..=255u8).step_by(7) {
            let cx = companion(Gf(x));
            for y in (0..=255u8).step_by(5) {
                assert_eq!(apply_to_byte(&cx, y), (Gf(x) * Gf(y)).0, "x={x} y={y}");
            }
        }
    }

    #[test]
    fn companion_is_additive() {
        for (a, b) in [(3u8, 200u8), (17, 17), (255, 1), (0x1D, 0x80)] {
            let lhs = companion(Gf(a) + Gf(b));
            let rhs = companion(Gf(a)).xor(&companion(Gf(b)));
            assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn companion_is_multiplicative() {
        for (a, b) in [(3u8, 200u8), (2, 2), (255, 254), (0x53, 0xCA)] {
            let lhs = companion(Gf(a) * Gf(b));
            let rhs = companion(Gf(a)).mul(&companion(Gf(b)));
            assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn companion_of_alpha_is_shift_plus_feedback() {
        // Multiplying by α shifts bits up by one and feeds the top bit back
        // through the polynomial 0x1D.
        let c = companion(Gf::ALPHA);
        for y in 0..=255u8 {
            let expected = (y << 1) ^ (if y & 0x80 != 0 { 0x1D } else { 0 });
            assert_eq!(apply_to_byte(&c, y), expected);
        }
    }
}
