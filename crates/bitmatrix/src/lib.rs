//! Matrices over F2 (the field of bits) and the expansion of GF(2^8)
//! matrices into bit-matrices.
//!
//! XOR-based erasure coding (paper §1) rests on two classical facts:
//!
//! 1. the isomorphism `𝔅 : GF(2^8) → F2^{8×1}` sending a byte to the column
//!    vector of its bits, and
//! 2. the *companion map* `~· : GF(2^8) → F2^{8×8}` sending a byte `x` to
//!    the matrix of the linear map "multiply by `x`", which satisfies
//!    `x ×_GF y = 𝔅⁻¹( x̃ ·_F2 𝔅(y) )`.
//!
//! Applying `~·` entry-wise to a coding matrix `V ∈ GF(2^8)^{a×b}` yields a
//! bit-matrix `Ṽ ∈ F2^{8a×8b}`; multiplying `Ṽ` with bit-sliced data is pure
//! array XOR, which is what the rest of this workspace optimizes.

use gf256::GfMatrix;
use std::fmt;

mod companion;

pub use companion::{apply_to_byte, bits_to_byte, byte_to_bits, companion};

/// A dense bit-matrix over F2, rows stored as packed `u64` words.
///
/// Invariant: unused tail bits of each row's last word are always zero, so
/// popcounts and word-wise comparisons are exact.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    /// words per row
    wpr: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// All-zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        let wpr = cols.div_ceil(64).max(1);
        BitMatrix {
            rows,
            cols,
            wpr,
            words: vec![0; rows * wpr],
        }
    }

    /// The `n × n` identity over F2.
    pub fn identity(n: usize) -> Self {
        let mut m = BitMatrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Build from a predicate on `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut m = BitMatrix::zero(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if f(i, j) {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    /// Parse rows of `'0'`/`'1'` characters (whitespace ignored), as used by
    /// unit tests to transcribe matrices straight out of the paper.
    pub fn parse(rows: &[&str]) -> Self {
        let parsed: Vec<Vec<bool>> = rows
            .iter()
            .map(|r| {
                r.chars()
                    .filter(|c| !c.is_whitespace())
                    .map(|c| match c {
                        '0' => false,
                        '1' => true,
                        other => panic!("invalid bit character {other:?}"),
                    })
                    .collect()
            })
            .collect();
        let cols = parsed.first().map_or(0, Vec::len);
        assert!(
            parsed.iter().all(|r| r.len() == cols),
            "ragged rows in bit-matrix literal"
        );
        BitMatrix::from_fn(parsed.len(), cols, |i, j| parsed[i][j])
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read one bit.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.rows && j < self.cols);
        self.words[i * self.wpr + j / 64] >> (j % 64) & 1 == 1
    }

    /// Write one bit.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: bool) {
        debug_assert!(i < self.rows && j < self.cols);
        let w = &mut self.words[i * self.wpr + j / 64];
        if v {
            *w |= 1 << (j % 64);
        } else {
            *w &= !(1 << (j % 64));
        }
    }

    /// Packed words of row `i`.
    #[inline]
    pub fn row_words(&self, i: usize) -> &[u64] {
        &self.words[i * self.wpr..(i + 1) * self.wpr]
    }

    /// XOR row `src`'s bits into row `dst`.
    pub fn xor_row_into(&mut self, src: usize, dst: usize) {
        assert!(src != dst, "xor_row_into requires distinct rows");
        for k in 0..self.wpr {
            let v = self.words[src * self.wpr + k];
            self.words[dst * self.wpr + k] ^= v;
        }
    }

    /// Number of set bits in row `i`.
    #[inline]
    pub fn row_popcount(&self, i: usize) -> usize {
        self.row_words(i).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Total number of set bits.
    pub fn popcount(&self) -> usize {
        (0..self.rows).map(|i| self.row_popcount(i)).sum()
    }

    /// Column indices of the set bits of row `i`, ascending.
    pub fn ones_in_row(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.row_words(i).iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// F2 matrix product.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn mul(&self, rhs: &BitMatrix) -> BitMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "bit-matrix product shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = BitMatrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in self.ones_in_row(i).collect::<Vec<_>>() {
                let start = i * out.wpr;
                for (w, &r) in out.words[start..start + out.wpr]
                    .iter_mut()
                    .zip(rhs.row_words(k))
                {
                    *w ^= r;
                }
            }
        }
        out
    }

    /// F2 matrix–vector product; `v[k]` is the k-th input bit.
    pub fn mul_vec(&self, v: &[bool]) -> Vec<bool> {
        assert_eq!(v.len(), self.cols, "vector length must equal column count");
        (0..self.rows)
            .map(|i| self.ones_in_row(i).fold(false, |acc, k| acc ^ v[k]))
            .collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> BitMatrix {
        BitMatrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// XOR of two equally-shaped matrices (addition over F2).
    pub fn xor(&self, rhs: &BitMatrix) -> BitMatrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "bit-matrix addition shape mismatch"
        );
        let mut out = self.clone();
        for (a, b) in out.words.iter_mut().zip(&rhs.words) {
            *a ^= b;
        }
        out
    }

    /// Paste `block` into `self` with its top-left corner at `(r0, c0)`.
    pub fn paste(&mut self, r0: usize, c0: usize, block: &BitMatrix) {
        assert!(r0 + block.rows <= self.rows && c0 + block.cols <= self.cols);
        for i in 0..block.rows {
            for j in 0..block.cols {
                self.set(r0 + i, c0 + j, block.get(i, j));
            }
        }
    }

    /// Expand a GF(2^8) matrix entry-wise through the companion map:
    /// the result has shape `8·rows × 8·cols`.
    pub fn expand_gf_matrix(m: &GfMatrix) -> BitMatrix {
        let mut out = BitMatrix::zero(8 * m.rows(), 8 * m.cols());
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                let e = m[(i, j)];
                if e.is_zero() {
                    continue;
                }
                out.paste(8 * i, 8 * j, &companion(e));
            }
        }
        out
    }

    /// Extract the rows `[r0, r0+count)` as a new matrix.
    pub fn row_range(&self, r0: usize, count: usize) -> BitMatrix {
        assert!(r0 + count <= self.rows);
        BitMatrix::from_fn(count, self.cols, |i, j| self.get(r0 + i, j))
    }

    /// Extract the columns `[c0, c0+count)` as a new matrix.
    ///
    /// Together with [`BitMatrix::row_range`] this carves arbitrary
    /// contiguous sub-matrices out of a generator — the delta-update path
    /// uses it to isolate one disk's column block of a parity matrix.
    pub fn col_range(&self, c0: usize, count: usize) -> BitMatrix {
        assert!(c0 + count <= self.cols);
        BitMatrix::from_fn(self.rows, count, |i, j| self.get(i, c0 + j))
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{}", if self.get(i, j) { '1' } else { '0' })?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_debug_roundtrip() {
        let m = BitMatrix::parse(&["1100000", "0011110", "0011101"]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 7);
        assert!(m.get(0, 0) && m.get(0, 1) && !m.get(0, 2));
        assert_eq!(m.row_popcount(1), 4);
        assert_eq!(m.popcount(), 2 + 4 + 4);
    }

    #[test]
    fn paper_intro_example_mul_vec() {
        // §1: the 3×7 matrix acting on (d1..d7) produces
        // (d1⊕d2, d3⊕d4⊕d5⊕d6, d3⊕d4⊕d5⊕d7).
        let m = BitMatrix::parse(&["1100000", "0011110", "0011101"]);
        let rows: Vec<Vec<usize>> = (0..3).map(|i| m.ones_in_row(i).collect()).collect();
        assert_eq!(rows[0], vec![0, 1]);
        assert_eq!(rows[1], vec![2, 3, 4, 5]);
        assert_eq!(rows[2], vec![2, 3, 4, 6]);
    }

    #[test]
    fn identity_is_unit_for_mul() {
        let m = BitMatrix::from_fn(5, 5, |i, j| (i * 3 + j * 5) % 7 < 3);
        assert_eq!(m.mul(&BitMatrix::identity(5)), m);
        assert_eq!(BitMatrix::identity(5).mul(&m), m);
    }

    #[test]
    fn mul_matches_naive_triple_loop() {
        let a = BitMatrix::from_fn(70, 90, |i, j| (i * j) % 5 == 1);
        let b = BitMatrix::from_fn(90, 65, |i, j| (i + 2 * j) % 3 == 0);
        let fast = a.mul(&b);
        let slow = BitMatrix::from_fn(70, 65, |i, j| {
            (0..90).fold(false, |acc, k| acc ^ (a.get(i, k) & b.get(k, j)))
        });
        assert_eq!(fast, slow);
    }

    #[test]
    fn xor_row_into_both_directions() {
        let mut m = BitMatrix::parse(&["1010", "0110"]);
        m.xor_row_into(0, 1);
        assert_eq!(m, BitMatrix::parse(&["1010", "1100"]));
        m.xor_row_into(1, 0);
        assert_eq!(m, BitMatrix::parse(&["0110", "1100"]));
    }

    #[test]
    fn transpose_involution_and_popcount() {
        let m = BitMatrix::from_fn(13, 67, |i, j| (i ^ j) % 4 == 0);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().popcount(), m.popcount());
    }

    #[test]
    fn ones_in_row_crosses_word_boundary() {
        let mut m = BitMatrix::zero(1, 130);
        for j in [0, 63, 64, 127, 129] {
            m.set(0, j, true);
        }
        let ones: Vec<usize> = m.ones_in_row(0).collect();
        assert_eq!(ones, vec![0, 63, 64, 127, 129]);
    }

    #[test]
    fn row_range_extraction() {
        let m = BitMatrix::from_fn(10, 8, |i, j| i == j);
        let sub = m.row_range(2, 3);
        assert_eq!(sub.rows(), 3);
        assert!(sub.get(0, 2) && sub.get(1, 3) && sub.get(2, 4));
    }

    #[test]
    fn col_range_extraction() {
        let m = BitMatrix::from_fn(6, 130, |i, j| (i + j) % 3 == 0);
        // Cross a word boundary on purpose.
        let sub = m.col_range(60, 10);
        assert_eq!(sub.rows(), 6);
        assert_eq!(sub.cols(), 10);
        for i in 0..6 {
            for j in 0..10 {
                assert_eq!(sub.get(i, j), m.get(i, 60 + j), "({i},{j})");
            }
        }
        // Row/column range extraction commutes.
        let a = m.row_range(1, 4).col_range(60, 10);
        let b = m.col_range(60, 10).row_range(1, 4);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mul_shape_mismatch_panics() {
        let a = BitMatrix::zero(2, 3);
        let b = BitMatrix::zero(2, 3);
        let _ = a.mul(&b);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_parse_panics() {
        let _ = BitMatrix::parse(&["10", "1"]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use gf256::{Gf, GfMatrix};
    use proptest::prelude::*;

    fn gf_matrix(rows: usize, cols: usize) -> impl Strategy<Value = GfMatrix> {
        proptest::collection::vec(any::<u8>(), rows * cols)
            .prop_map(move |b| GfMatrix::from_bytes(rows, cols, &b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The companion expansion is a homomorphism of matrix rings:
        /// expand(A · B) = expand(A) ·_F2 expand(B).
        #[test]
        fn expansion_is_multiplicative(a in gf_matrix(3, 4), b in gf_matrix(4, 2)) {
            let lhs = BitMatrix::expand_gf_matrix(&(&a * &b));
            let rhs = BitMatrix::expand_gf_matrix(&a).mul(&BitMatrix::expand_gf_matrix(&b));
            prop_assert_eq!(lhs, rhs);
        }

        /// Ṽ ·_F2 𝔅(D) = 𝔅(V ·_GF D): the bit-matrix computes the same
        /// codeword as GF(2^8) arithmetic (paper §1).
        #[test]
        fn expansion_computes_gf_product(
            v in gf_matrix(3, 5),
            d in proptest::collection::vec(any::<u8>(), 5),
        ) {
            let dg: Vec<Gf> = d.iter().copied().map(Gf).collect();
            let code = v.mul_vec(&dg);

            // bit-vector of D: 8 bits per symbol, LSB first.
            let bits: Vec<bool> = d
                .iter()
                .flat_map(|&byte| byte_to_bits(byte))
                .collect();
            let vb = BitMatrix::expand_gf_matrix(&v);
            let out_bits = vb.mul_vec(&bits);
            let out_bytes: Vec<u8> = out_bits.chunks_exact(8).map(bits_to_byte).collect();
            let expected: Vec<u8> = code.iter().map(|g| g.0).collect();
            prop_assert_eq!(out_bytes, expected);
        }

        /// Popcount of an expanded row block predicts the XOR count of the
        /// SLP row that will be generated from it.
        #[test]
        fn expansion_shape(a in gf_matrix(2, 3)) {
            let e = BitMatrix::expand_gf_matrix(&a);
            prop_assert_eq!(e.rows(), 16);
            prop_assert_eq!(e.cols(), 24);
        }
    }
}

impl BitMatrix {
    /// Inverse over F2 by Gauss–Jordan, or `None` if singular.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn invert(&self) -> Option<BitMatrix> {
        assert_eq!(self.rows, self.cols, "only square matrices can be inverted");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = BitMatrix::identity(n);
        for col in 0..n {
            let pivot = (col..n).find(|&r| a.get(r, col))?;
            if pivot != col {
                a.swap_rows(col, pivot);
                inv.swap_rows(col, pivot);
            }
            for r in 0..n {
                if r != col && a.get(r, col) {
                    a.xor_row_into(col, r);
                    inv.xor_row_into(col, r);
                }
            }
        }
        Some(inv)
    }

    /// Swap two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for k in 0..self.wpr {
            self.words.swap(a * self.wpr + k, b * self.wpr + k);
        }
    }

    /// Rank over F2 (non-destructive).
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        let mut rank = 0;
        for col in 0..m.cols {
            let Some(pivot) = (rank..m.rows).find(|&r| m.get(r, col)) else {
                continue;
            };
            m.swap_rows(rank, pivot);
            for r in 0..m.rows {
                if r != rank && m.get(r, col) {
                    m.xor_row_into(rank, r);
                }
            }
            rank += 1;
            if rank == m.rows {
                break;
            }
        }
        rank
    }

    /// Greedily select a maximal set of linearly independent rows,
    /// returned as ascending row indices. Used by array-code decoders to
    /// pick an invertible square subsystem from the surviving symbols.
    pub fn select_independent_rows(&self) -> Vec<usize> {
        // Incremental elimination: `basis[c]` holds a reduced vector whose
        // leading set bit is column c.
        let mut basis: Vec<Option<Vec<u64>>> = vec![None; self.cols];
        let mut chosen = Vec::new();
        for r in 0..self.rows {
            let mut v = self.row_words(r).to_vec();
            // Reduce against the basis until the row dies (dependent) or
            // claims an empty leading column.
            while let Some(lead) = v
                .iter()
                .enumerate()
                .find_map(|(wi, &w)| (w != 0).then(|| wi * 64 + w.trailing_zeros() as usize))
            {
                match &basis[lead] {
                    Some(b) => {
                        for (x, y) in v.iter_mut().zip(b) {
                            *x ^= y;
                        }
                    }
                    None => {
                        basis[lead] = Some(v);
                        chosen.push(r);
                        break;
                    }
                }
            }
            if chosen.len() == self.cols {
                break;
            }
        }
        chosen
    }
}

#[cfg(test)]
mod f2_algebra_tests {
    use super::*;

    #[test]
    fn invert_roundtrip() {
        // A random-ish invertible matrix: identity plus upper triangle.
        let n = 9;
        let m = BitMatrix::from_fn(n, n, |i, j| i == j || (j > i && (i * 5 + j * 3) % 4 == 0));
        let inv = m.invert().expect("triangular-with-unit-diagonal is invertible");
        assert_eq!(m.mul(&inv), BitMatrix::identity(n));
        assert_eq!(inv.mul(&m), BitMatrix::identity(n));
    }

    #[test]
    fn singular_returns_none() {
        let m = BitMatrix::from_fn(4, 4, |i, _| i == 0); // rank 1
        assert!(m.invert().is_none());
        assert_eq!(m.rank(), 1);
    }

    #[test]
    fn rank_of_identity_and_zero() {
        assert_eq!(BitMatrix::identity(7).rank(), 7);
        assert_eq!(BitMatrix::zero(5, 8).rank(), 0);
    }

    #[test]
    fn independent_row_selection_spans() {
        // 6 rows in F2^4 with duplicates and sums: selection must pick a
        // basis of the row space.
        let m = BitMatrix::parse(&[
            "1000", "1000", // duplicate
            "0100", "1100", // sum of the first two picks
            "0010", "0001",
        ]);
        let rows = m.select_independent_rows();
        assert_eq!(rows.len(), 4);
        let square = BitMatrix::from_fn(4, 4, |i, j| m.get(rows[i], j));
        assert!(square.invert().is_some());
    }

    #[test]
    fn selection_stops_at_rank() {
        let m = BitMatrix::from_fn(10, 3, |i, j| (i + j) % 2 == 0);
        let rows = m.select_independent_rows();
        assert_eq!(rows.len(), m.rank());
    }
}
