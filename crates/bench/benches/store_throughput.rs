//! Object-store throughput over loopback: PUT/GET MB/s and ops/s for
//! healthy reads, degraded reads and delta overwrites, single client vs
//! 8 concurrent clients.
//!
//! A plain-main bench (harness = false): spins up an in-process RS(4, 2)
//! cluster of 6 loopback shard nodes and measures wall-clock through the
//! real sockets, framing, CRCs and disk-backed blob stores.
//!
//! ```text
//! cargo bench --bench store_throughput
//! ```

use ec_core::RsConfig;
use ec_store::{Cluster, NodeHandle, OverwriteMode};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const N: usize = 4;
const P: usize = 2;
const OBJECT_BYTES: usize = 1 << 20; // 1 MiB objects
const OBJECTS: usize = 24;

struct Fixture {
    root: PathBuf,
    nodes: Vec<Option<NodeHandle>>,
    addrs: Vec<String>,
}

impl Fixture {
    fn spawn() -> Fixture {
        let root = std::env::temp_dir().join(format!(
            "ec_store_bench_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let nodes: Vec<Option<NodeHandle>> = (0..N + P)
            .map(|i| {
                Some(
                    NodeHandle::spawn(&root.join(format!("node{i}")), "127.0.0.1:0", 4)
                        .expect("spawn node"),
                )
            })
            .collect();
        let addrs = nodes
            .iter()
            .map(|n| n.as_ref().unwrap().addr().to_string())
            .collect();
        Fixture { root, nodes, addrs }
    }

    fn cluster(&self) -> Cluster {
        Cluster::new(self.addrs.clone(), RsConfig::new(N, P))
            .expect("cluster")
            .with_timeout(Duration::from_secs(10))
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        for node in self.nodes.iter_mut().filter_map(Option::take) {
            node.shutdown();
        }
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn payload(seed: usize) -> Vec<u8> {
    (0..OBJECT_BYTES).map(|i| ((i * 31 + seed * 131) % 251) as u8).collect()
}

fn name(k: usize) -> String {
    format!("bench-{k:03}")
}

struct Row {
    label: &'static str,
    clients: usize,
    ops: usize,
    bytes: usize,
    elapsed: Duration,
}

impl Row {
    fn print(&self) {
        let secs = self.elapsed.as_secs_f64();
        println!(
            "{:<28} {:>2} client(s)  {:>7.1} MB/s  {:>8.1} ops/s",
            self.label,
            self.clients,
            self.bytes as f64 / secs / 1e6,
            self.ops as f64 / secs,
        );
    }
}

/// Run `ops` operations split across `clients` threads, returning the
/// wall-clock of the slowest thread span.
fn timed(
    label: &'static str,
    clients: usize,
    ops: usize,
    bytes_per_op: usize,
    cluster: &Arc<Cluster>,
    op: impl Fn(&Cluster, usize) + Send + Sync + 'static,
) -> Row {
    let op = Arc::new(op);
    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|t| {
            let cluster = cluster.clone();
            let op = op.clone();
            std::thread::spawn(move || {
                let mut k = t;
                while k < ops {
                    op(&cluster, k);
                    k += clients;
                }
            })
        })
        .collect();
    for th in threads {
        th.join().expect("bench client");
    }
    Row { label, clients, ops, bytes: ops * bytes_per_op, elapsed: start.elapsed() }
}

fn main() {
    let mut fx = Fixture::spawn();
    let cluster = Arc::new(fx.cluster());
    println!(
        "store_throughput: RS({N}, {P}) over {} loopback nodes, {} x {} MiB objects\n",
        N + P,
        OBJECTS,
        OBJECT_BYTES >> 20,
    );

    // PUT: encode + 6 shard ships + manifest replication, per object.
    timed("PUT", 1, OBJECTS, OBJECT_BYTES, &cluster, |c, k| {
        c.put(&name(k), &payload(k)).expect("put");
    })
    .print();

    // Healthy GET (data shards only, no reconstruction).
    for clients in [1usize, 8] {
        timed("GET healthy", clients, OBJECTS, OBJECT_BYTES, &cluster, |c, k| {
            let (data, report) = c.get_with_report(&name(k)).expect("get");
            assert_eq!(data.len(), OBJECT_BYTES);
            assert!(!report.degraded());
        })
        .print();
    }

    // Delta overwrite: one shard's worth of change per object.
    let shard_len = cluster.codec().shard_len(OBJECT_BYTES);
    timed("OVERWRITE delta (1/4 shards)", 1, OBJECTS, shard_len + 2 * shard_len, &cluster, move |c, k| {
        let mut v2 = payload(k);
        for b in &mut v2[..256] {
            *b ^= 0x5A;
        }
        let report = c.overwrite(&name(k), &v2).expect("overwrite");
        assert_eq!(report.mode, OverwriteMode::Delta);
    })
    .print();

    // Kill one node: every read now reconstructs around it.
    fx.nodes[0].take().expect("alive").shutdown();
    for clients in [1usize, 8] {
        timed("GET degraded (1 node dead)", clients, OBJECTS, OBJECT_BYTES, &cluster, |c, k| {
            let data = c.get(&name(k)).expect("degraded get");
            assert_eq!(data.len(), OBJECT_BYTES);
        })
        .print();
    }

    println!(
        "\n(delta overwrite bytes/op counts the shipped shards: 1 changed data \
         shard + {P} parity; a full re-put ships {} shards)",
        N + P,
    );
}
