//! Object-store throughput over loopback: PUT/GET MB/s and ops/s for
//! healthy reads, degraded reads and delta overwrites, single client vs
//! 8 concurrent clients — plus three latency-shimmed sections that
//! *assert* the fan-out rework's wins:
//!
//! * uniform per-node delay: put/get cost ~max(per-node RTT), a fraction
//!   of the serial sum-of-RTT bound;
//! * one slow node: first-n early-return keeps healthy reads near the
//!   fast-node RTT instead of the straggler's;
//! * batch multi-node repair: one pass for two dead nodes reads each
//!   survivor once — about half the bytes of two sequential passes;
//! * scrub cost: the incremental Merkle scrub verifies a healthy cluster
//!   by comparing 32-byte roots (zero payload bytes), asserted at ≥ 5x
//!   fewer bytes than the CRC-era full re-read.
//!
//! A plain-main bench (harness = false): spins up an in-process RS(4, 2)
//! cluster of 6 loopback shard nodes and measures wall-clock through the
//! real sockets, framing, CRCs and disk-backed blob stores.
//!
//! ```text
//! cargo bench --bench store_throughput
//! ```

use ec_core::RsConfig;
use ec_store::{Cluster, NodeHandle, NodeOptions, OverwriteMode};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const N: usize = 4;
const P: usize = 2;
const OBJECT_BYTES: usize = 1 << 20; // 1 MiB objects
const OBJECTS: usize = 24;

struct Fixture {
    root: PathBuf,
    nodes: Vec<Option<NodeHandle>>,
    addrs: Vec<String>,
}

impl Fixture {
    fn spawn() -> Fixture {
        Fixture::spawn_with(
            "main",
            N + P,
            |_| NodeOptions { workers: 4, ..NodeOptions::default() },
        )
    }

    /// Spawn `count` nodes with per-node options (latency shims).
    fn spawn_with(
        tag: &str,
        count: usize,
        opts: impl Fn(usize) -> NodeOptions,
    ) -> Fixture {
        let root = std::env::temp_dir().join(format!(
            "ec_store_bench_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let nodes: Vec<Option<NodeHandle>> = (0..count)
            .map(|i| {
                Some(
                    NodeHandle::spawn_with(
                        &root.join(format!("node{i}")),
                        "127.0.0.1:0",
                        opts(i),
                    )
                    .expect("spawn node"),
                )
            })
            .collect();
        let addrs = nodes
            .iter()
            .map(|n| n.as_ref().unwrap().addr().to_string())
            .collect();
        Fixture { root, nodes, addrs }
    }

    fn cluster(&self) -> Cluster {
        self.cluster_geom(N, P)
    }

    fn cluster_geom(&self, n: usize, p: usize) -> Cluster {
        Cluster::new(self.addrs.clone(), RsConfig::new(n, p))
            .expect("cluster")
            .with_timeout(Duration::from_secs(10))
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        for node in self.nodes.iter_mut().filter_map(Option::take) {
            node.shutdown();
        }
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn payload(seed: usize) -> Vec<u8> {
    (0..OBJECT_BYTES).map(|i| ((i * 31 + seed * 131) % 251) as u8).collect()
}

fn name(k: usize) -> String {
    format!("bench-{k:03}")
}

struct Row {
    label: &'static str,
    clients: usize,
    ops: usize,
    bytes: usize,
    elapsed: Duration,
}

impl Row {
    fn print(&self) {
        let secs = self.elapsed.as_secs_f64();
        println!(
            "{:<28} {:>2} client(s)  {:>7.1} MB/s  {:>8.1} ops/s",
            self.label,
            self.clients,
            self.bytes as f64 / secs / 1e6,
            self.ops as f64 / secs,
        );
    }
}

/// Run `ops` operations split across `clients` threads, returning the
/// wall-clock of the slowest thread span.
fn timed(
    label: &'static str,
    clients: usize,
    ops: usize,
    bytes_per_op: usize,
    cluster: &Arc<Cluster>,
    op: impl Fn(&Cluster, usize) + Send + Sync + 'static,
) -> Row {
    let op = Arc::new(op);
    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|t| {
            let cluster = cluster.clone();
            let op = op.clone();
            std::thread::spawn(move || {
                let mut k = t;
                while k < ops {
                    op(&cluster, k);
                    k += clients;
                }
            })
        })
        .collect();
    for th in threads {
        th.join().expect("bench client");
    }
    Row { label, clients, ops, bytes: ops * bytes_per_op, elapsed: start.elapsed() }
}

fn main() {
    let mut fx = Fixture::spawn();
    let cluster = Arc::new(fx.cluster());
    println!(
        "store_throughput: RS({N}, {P}) over {} loopback nodes, {} x {} MiB objects\n",
        N + P,
        OBJECTS,
        OBJECT_BYTES >> 20,
    );

    // PUT: encode + 6 shard ships + manifest replication, per object.
    timed("PUT", 1, OBJECTS, OBJECT_BYTES, &cluster, |c, k| {
        c.put(&name(k), &payload(k)).expect("put");
    })
    .print();

    // Healthy GET (data shards only, no reconstruction).
    for clients in [1usize, 8] {
        timed("GET healthy", clients, OBJECTS, OBJECT_BYTES, &cluster, |c, k| {
            let (data, report) = c.get_with_report(&name(k)).expect("get");
            assert_eq!(data.len(), OBJECT_BYTES);
            assert!(!report.degraded());
        })
        .print();
    }

    // Delta overwrite: one shard's worth of change per object.
    let shard_len = cluster.codec().shard_len(OBJECT_BYTES);
    timed("OVERWRITE delta (1/4 shards)", 1, OBJECTS, shard_len + 2 * shard_len, &cluster, move |c, k| {
        let mut v2 = payload(k);
        for b in &mut v2[..256] {
            *b ^= 0x5A;
        }
        let report = c.overwrite(&name(k), &v2).expect("overwrite");
        assert_eq!(report.mode, OverwriteMode::Delta);
    })
    .print();

    // Kill one node: every read now reconstructs around it.
    fx.nodes[0].take().expect("alive").shutdown();
    for clients in [1usize, 8] {
        timed("GET degraded (1 node dead)", clients, OBJECTS, OBJECT_BYTES, &cluster, |c, k| {
            let data = c.get(&name(k)).expect("degraded get");
            assert_eq!(data.len(), OBJECT_BYTES);
        })
        .print();
    }

    println!(
        "\n(delta overwrite bytes/op counts the shipped shards: 1 changed data \
         shard + {P} parity; a full re-put ships {} shards)",
        N + P,
    );
    drop(cluster);
    drop(fx);

    fanout_vs_serial();
    first_n_straggler();
    batch_repair_traffic();
    scrub_cost();
    tuned_vs_paper_defaults();
}

/// Autotuned engine defaults vs the static paper defaults, end to end
/// through the cluster PUT path (encode + shard ships + manifest
/// replication). `RsConfig::new` already starts from the tuned profile;
/// the paper rows pin the pre-autotuner `B = 1024` / auto-kernel
/// configuration explicitly.
fn tuned_vs_paper_defaults() {
    const OPS: usize = 12;
    let fx = Fixture::spawn_with(
        "tuned",
        N + P,
        |_| NodeOptions { workers: 4, ..NodeOptions::default() },
    );
    let defaults = ec_tune::engine_defaults();
    println!(
        "\nTUNED vs paper defaults, PUT path (RS({N}, {P}), {OPS} x {} MiB):",
        OBJECT_BYTES >> 20
    );
    let configs = [
        ("paper (B=1024, auto kernel)", {
            let d = ec_tune::EngineDefaults::PAPER;
            RsConfig::new(N, P).blocksize(d.blocksize).kernel(d.kernel).parallelism(d.parallelism)
        }),
        (
            if defaults == ec_tune::EngineDefaults::PAPER {
                "tuned   (autotuner off: same as paper)"
            } else {
                "tuned   (profile-fed RsConfig::new)"
            },
            RsConfig::new(N, P),
        ),
    ];
    for (tag, (label, cfg)) in configs.into_iter().enumerate() {
        let cluster = Arc::new(
            Cluster::new(fx.addrs.clone(), cfg)
                .expect("cluster")
                .with_timeout(Duration::from_secs(10)),
        );
        let row = timed(label, 1, OPS, OBJECT_BYTES, &cluster, move |c, k| {
            c.put(&format!("tune-{tag}-{k:03}"), &payload(k)).expect("put");
        });
        println!(
            "  {:<40} {:>7.1} MB/s",
            row.label,
            row.bytes as f64 / row.elapsed.as_secs_f64() / 1e6
        );
    }
}

/// Uniform 20 ms service delay on every node of a 14-node RS(10, 4)
/// cluster: a serial client would pay ~sum of per-node RTTs per
/// operation; the concurrent fan-out pays ~max, i.e. ~one delay per
/// request round. Asserted, not just printed.
fn fanout_vs_serial() {
    const DELAY: Duration = Duration::from_millis(20);
    const NODES: usize = 14;
    const OPS: usize = 4;
    let fx = Fixture::spawn_with("delay", NODES, |_| NodeOptions {
        workers: 4,
        response_delay: Some(DELAY),
        delay_key_prefix: None,
    });
    let cluster = fx.cluster_geom(10, 4);
    let data: Vec<u8> = (0..64 << 10).map(|i| (i % 251) as u8).collect();

    // PUT = 3 request rounds (manifest election, shard ships, manifest
    // replication); a serial client pays one delayed request per node
    // per round.
    let serial_put = DELAY * (3 * NODES) as u32;
    let start = Instant::now();
    for k in 0..OPS {
        cluster.put(&format!("delay-{k}"), &data).expect("put");
    }
    let put_avg = start.elapsed() / OPS as u32;

    // GET = 2 rounds (election + first-n shard fetch).
    let serial_get = DELAY * (2 * NODES) as u32;
    let start = Instant::now();
    for k in 0..OPS {
        let (got, report) = cluster
            .get_with_report(&format!("delay-{k}"))
            .expect("get");
        assert_eq!(got.len(), data.len());
        assert!(!report.degraded());
    }
    let get_avg = start.elapsed() / OPS as u32;

    println!(
        "\nFAN-OUT vs serial, RS(10, 4) over {NODES} nodes @ {} ms/response:",
        DELAY.as_millis()
    );
    println!(
        "  PUT {:>6.1} ms/op  (serial bound {:>6.1} ms)",
        put_avg.as_secs_f64() * 1e3,
        serial_put.as_secs_f64() * 1e3
    );
    println!(
        "  GET {:>6.1} ms/op  (serial bound {:>6.1} ms)",
        get_avg.as_secs_f64() * 1e3,
        serial_get.as_secs_f64() * 1e3
    );
    assert!(
        put_avg < serial_put / 3,
        "concurrent PUT must beat a third of the serial sum-of-RTT bound: \
         {put_avg:?} vs {serial_put:?}"
    );
    assert!(
        get_avg < serial_get / 3,
        "concurrent GET must beat a third of the serial sum-of-RTT bound: \
         {get_avg:?} vs {serial_get:?}"
    );
}

/// One straggler: node 0 delays shard requests (`s:` keys) by 200 ms.
/// The first-n read completes on the 10 fast arrivals and abandons the
/// straggler, so a healthy read stays near the fast-node RTT — nowhere
/// near the 200 ms a wait-for-all read would pay.
fn first_n_straggler() {
    const SLOW: Duration = Duration::from_millis(200);
    const NODES: usize = 14;
    const OPS: usize = 4;
    let fx = Fixture::spawn_with("straggler", NODES, |i| NodeOptions {
        workers: 4,
        response_delay: (i == 0).then_some(SLOW),
        // Only shard fetches are delayed: the manifest election is a
        // wait-for-all vote (correctness), and slowing `m:` keys would
        // measure the election, not the first-n read.
        delay_key_prefix: (i == 0).then(|| "s:".to_string()),
    });
    let cluster = fx.cluster_geom(10, 4);
    let data: Vec<u8> = (0..64 << 10).map(|i| (i % 241) as u8).collect();
    for k in 0..OPS {
        // Puts wait for all n + p shard acks, including the slow node's.
        cluster.put(&format!("strag-{k}"), &data).expect("put");
    }

    let start = Instant::now();
    let mut abandoned = 0usize;
    for k in 0..OPS {
        let (got, report) = cluster
            .get_with_report(&format!("strag-{k}"))
            .expect("get");
        assert_eq!(got.len(), data.len());
        assert!(!report.degraded(), "a slow node is not damage");
        abandoned += report.abandoned().len();
    }
    let get_avg = start.elapsed() / OPS as u32;
    println!(
        "\nFIRST-N under one {} ms straggler ({NODES} nodes, RS(10, 4)):",
        SLOW.as_millis()
    );
    println!(
        "  GET {:>6.1} ms/op, {abandoned} straggler fetch(es) abandoned \
         across {OPS} reads",
        get_avg.as_secs_f64() * 1e3
    );
    assert!(
        get_avg < SLOW / 2,
        "a first-n read must not wait out the straggler: {get_avg:?}"
    );
}

/// Two nodes die at once. A batch `repair_nodes` pass rebuilds both
/// with one survivor fetch + one reconstruct per object; two sequential
/// `repair_node` passes read the survivors twice. Measured as
/// `bytes_read`, asserted at ~2x.
fn batch_repair_traffic() {
    const OPS: usize = 6;
    let mut fx = Fixture::spawn_with(
        "batchrepair",
        N + P,
        |_| NodeOptions { workers: 4, ..NodeOptions::default() },
    );
    let mut cluster = fx.cluster();
    let data: Vec<u8> = (0..384 << 10).map(|i| (i % 239) as u8).collect();
    let mut shard_len = 0u64;
    for k in 0..OPS {
        shard_len = cluster
            .put(&format!("br-{k}"), &data)
            .expect("put")
            .shard_len as u64;
    }
    let kill = |fx: &mut Fixture, addr: &str| {
        let i = fx.addrs.iter().position(|a| a == addr).expect("addr");
        fx.nodes[i].take().expect("alive").shutdown();
    };
    let spawn_fresh = |fx: &mut Fixture, tag: &str| -> String {
        let node = NodeHandle::spawn(
            &fx.root.join(format!("repl-{tag}")),
            "127.0.0.1:0",
            4,
        )
        .expect("spawn replacement");
        let addr = node.addr().to_string();
        fx.nodes.push(Some(node));
        fx.addrs.push(addr.clone());
        addr
    };

    // Batch: both dead nodes repaired in ONE pass.
    let (dead_a, dead_b) = (fx.addrs[0].clone(), fx.addrs[1].clone());
    kill(&mut fx, &dead_a);
    kill(&mut fx, &dead_b);
    let (repl_a, repl_b) = (spawn_fresh(&mut fx, "a"), spawn_fresh(&mut fx, "b"));
    let report = cluster
        .repair_nodes(&[(dead_a, repl_a.clone()), (dead_b, repl_b.clone())])
        .expect("batch repair");
    assert!(report.failed.is_empty(), "{:?}", report.failed);
    let batch_read = report.bytes_read;
    // With n + p nodes every object places on every node: each object
    // rebuilds its two lost shards from exactly n survivors, read once.
    assert_eq!(batch_read, (OPS * N) as u64 * shard_len);

    // Sequential: kill the replacements (which now hold the same
    // shards) and repair them one pass per node.
    kill(&mut fx, &repl_a);
    kill(&mut fx, &repl_b);
    let (repl_a2, repl_b2) = (spawn_fresh(&mut fx, "a2"), spawn_fresh(&mut fx, "b2"));
    let seq_a = cluster.repair_node(&repl_a, &repl_a2).expect("repair a");
    let seq_b = cluster.repair_node(&repl_b, &repl_b2).expect("repair b");
    assert!(seq_a.failed.is_empty() && seq_b.failed.is_empty());
    let seq_read = seq_a.bytes_read + seq_b.bytes_read;

    println!("\nBATCH vs sequential repair of 2 dead nodes (RS({N}, {P}), {OPS} objects):");
    println!(
        "  batch repair_nodes: {batch_read} survivor bytes read; two \
         sequential repair_node passes: {seq_read} ({:.2}x)",
        seq_read as f64 / batch_read as f64
    );
    assert!(
        seq_read as f64 >= 1.8 * batch_read as f64,
        "a batch repair must read each survivor about once, not once per \
         dead node: batch {batch_read}, sequential {seq_read}"
    );
}

/// Scrub cost, CRC-era vs Merkle-era. The pre-hash scrub had no choice
/// but to fetch every shard of every object and re-encode; the
/// incremental scrub compares 32-byte Merkle roots over `HASH_SUBTREE`
/// and moves **zero** payload bytes while the cluster is healthy.
/// Asserted at ≥ 5x fewer bytes on the wire (in practice it is orders
/// of magnitude).
fn scrub_cost() {
    const OBJECTS: usize = 8;
    let fx = Fixture::spawn_with(
        "scrubcost",
        N + P,
        |_| NodeOptions { workers: 4, ..NodeOptions::default() },
    );
    let cluster = fx.cluster();
    for k in 0..OBJECTS {
        cluster.put(&format!("sc-{k}"), &payload(k)).expect("put");
    }

    let start = Instant::now();
    let incremental = cluster.scrub().expect("incremental scrub");
    let inc_elapsed = start.elapsed();
    assert!(incremental.clean(), "fixture must be healthy");
    assert_eq!(
        incremental.payload_bytes_read, 0,
        "a healthy incremental scrub fetches zero shard payload bytes"
    );
    let inc_bytes = incremental.hash_bytes_read + incremental.payload_bytes_read;

    let start = Instant::now();
    let full = cluster.scrub_deep().expect("deep scrub");
    let full_elapsed = start.elapsed();
    assert!(full.clean(), "fixture must be healthy");
    let full_bytes = full.hash_bytes_read + full.payload_bytes_read;

    println!(
        "\nSCRUB COST, {OBJECTS} x {} MiB objects (RS({N}, {P})):",
        OBJECT_BYTES >> 20
    );
    println!(
        "  full re-read (CRC-era):   {full_bytes:>12} bytes  {:>7.1} ms",
        full_elapsed.as_secs_f64() * 1e3
    );
    println!(
        "  Merkle incremental:       {inc_bytes:>12} bytes  {:>7.1} ms  \
         ({:.0}x fewer bytes)",
        inc_elapsed.as_secs_f64() * 1e3,
        full_bytes as f64 / inc_bytes.max(1) as f64
    );
    assert!(
        full_bytes >= 5 * inc_bytes.max(1),
        "the incremental scrub must move at least 5x fewer bytes than the \
         full re-read: {inc_bytes} vs {full_bytes}"
    );
}
