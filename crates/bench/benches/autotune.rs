//! Autotuner validation bench (plain main, harness = false): proves the
//! two properties the subsystem sells.
//!
//! 1. **The tuned configuration is never a regression.** Re-measure the
//!    full fixed (kernel × blocksize) grid with the real optimized
//!    RS(10, 4) encode program and assert the tuned pick's throughput is
//!    at least `1 - NOISE` of the best fixed cell. The tuned pick *is* a
//!    grid cell, so this can only fail if the tuner picked badly or the
//!    measurement is unstable beyond the noise floor.
//! 2. **A warm profile load is effectively free.** Loading a cached
//!    profile must not re-run the micro-benchmark (asserted via the
//!    `tune_count` probe) and must cost a vanishing fraction of a tune.
//!
//! ```text
//! cargo bench --bench autotune
//! ```

use ec_bench::{enc_base_slp, print_env_header, reps, rule};
use ec_tune::{load_or_tune_at, tune, tune_count, TuneOptions};
use slp_optimizer::{optimize, OptConfig};
use std::time::Instant;
use xor_runtime::available_kernels;

/// Accepted measurement noise between two runs of the same configuration
/// (single-core CI boxes jitter; the assertion must not flake).
const NOISE: f64 = 0.20;

fn main() {
    print_env_header("Autotuned configuration vs the fixed grid");

    // --- 1. tune (timed: this is the price of a cold first use) -------
    let t0 = Instant::now();
    let profile = tune(&TuneOptions::default());
    let tune_cost = t0.elapsed();
    println!(
        "cold tune: {:.1} ms across {} candidates -> kernel {} B={} stripes={}",
        tune_cost.as_secs_f64() * 1e3,
        profile.samples.len(),
        profile.kernel.name(),
        profile.blocksize,
        profile.stripes,
    );

    // --- 2. re-measure the fixed grid with the production program -----
    let slp = optimize(&enc_base_slp(10, 4), OptConfig::FULL_DFS);
    let data_bytes = 10 * 64 * 1024;
    let blocksizes = TuneOptions::default().blocksizes;
    println!();
    println!("{:>7} | {:>7} | {:>10}", "kernel", "B", "GB/s");
    println!("{}", rule(30));
    let mut best_fixed: Option<(f64, &'static str, usize)> = None;
    let mut tuned_rate = 0.0f64;
    for kernel in available_kernels() {
        for &bs in &blocksizes {
            let mut runner = ec_bench::BenchRunner::new(&slp, bs, kernel, data_bytes);
            let rate = runner.throughput(reps());
            let is_tuned = kernel == profile.kernel && bs == profile.blocksize;
            if is_tuned {
                tuned_rate = rate;
            }
            if best_fixed.is_none_or(|(r, ..)| rate > r) {
                best_fixed = Some((rate, kernel.name(), bs));
            }
            println!(
                "{:>7} | {:>7} | {:>10.2}{}",
                kernel.name(),
                bs,
                rate,
                if is_tuned { "  <- tuned pick" } else { "" }
            );
        }
    }
    let (best_rate, best_kernel, best_bs) = best_fixed.expect("grid is non-empty");
    println!();
    println!(
        "tuned pick: {:.2} GB/s | best fixed cell: {:.2} GB/s ({best_kernel}, B={best_bs})",
        tuned_rate, best_rate
    );
    assert!(
        tuned_rate >= best_rate * (1.0 - NOISE),
        "the tuned configuration must match the best fixed configuration \
         within {:.0}% noise: tuned {tuned_rate:.2} GB/s vs best {best_rate:.2} GB/s",
        NOISE * 100.0
    );

    // --- 3. warm profile load: no re-tune, vanishing cost -------------
    let path = std::env::temp_dir().join(format!(
        "xorslp-autotune-bench-{}.tune",
        std::process::id()
    ));
    profile.store(&path).expect("write profile cache");
    let before = tune_count();
    let t0 = Instant::now();
    let warm = load_or_tune_at(&path);
    let load_cost = t0.elapsed();
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        tune_count(),
        before,
        "a warm profile load must not re-run the micro-benchmark"
    );
    assert_eq!(*warm, profile, "the warm load must return the stored profile");
    println!(
        "warm profile load: {:.3} ms (cold tune was {:.1} ms, {:.0}x)",
        load_cost.as_secs_f64() * 1e3,
        tune_cost.as_secs_f64() * 1e3,
        tune_cost.as_secs_f64() / load_cost.as_secs_f64().max(1e-9)
    );
    assert!(
        load_cost.as_secs_f64() < tune_cost.as_secs_f64() / 10.0,
        "a warm load must cost a small fraction of a tune: \
         load {load_cost:?} vs tune {tune_cost:?}"
    );
}
