//! Criterion micro-benchmarks of the XOR kernels (§7.2's xor1 vs xor32 at
//! the single-operation level) and the baseline's GF multiply kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gf256::Gf;
use gf_baseline::{mul_slice, GfBackend};
use xor_runtime::{xor_slices, Kernel};

fn xor_kernels(c: &mut Criterion) {
    let len = 64 * 1024;
    let srcs: Vec<Vec<u8>> = (0..8)
        .map(|k| (0..len).map(|i| ((i * 7 + k * 13) % 256) as u8).collect())
        .collect();
    let mut group = c.benchmark_group("xor_kernel");
    group.throughput(Throughput::Bytes(len as u64));
    for arity in [2usize, 4, 8] {
        let refs: Vec<&[u8]> = srcs[..arity].iter().map(Vec::as_slice).collect();
        for kernel in [Kernel::Scalar, Kernel::Wide64, Kernel::Auto.resolve()] {
            group.bench_with_input(
                BenchmarkId::new(format!("{}-way", arity), kernel.name()),
                &refs,
                |b, refs| {
                    let mut dst = vec![0u8; len];
                    b.iter(|| xor_slices(kernel, &mut dst, refs));
                },
            );
        }
    }
    group.finish();
}

fn gf_mul_kernels(c: &mut Criterion) {
    let len = 64 * 1024;
    let src: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
    let mut group = c.benchmark_group("gf_mul_kernel");
    group.throughput(Throughput::Bytes(len as u64));
    let mut backends = vec![GfBackend::Table];
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        backends.push(GfBackend::Avx2);
    }
    for backend in backends {
        group.bench_function(backend.name(), |b| {
            let mut dst = vec![0u8; len];
            b.iter(|| mul_slice(backend, Gf(0xC3), &src, &mut dst));
        });
    }
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = xor_kernels, gf_mul_kernels
}
criterion_main!(benches);
