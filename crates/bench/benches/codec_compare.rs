//! Criterion benchmark comparing the full codecs end-to-end (the
//! statistical companion of `--bin table_7_6_compare`): our XOR-SLP codec
//! vs the table-driven baseline, encode and decode, RS(10,4).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ec_core::{RsCodec, RsConfig};
use gf_baseline::GfRsCodec;

fn codec_compare(c: &mut Criterion) {
    let n = 10;
    let p = 4;
    let data_len = 4 * 1_000_000;
    let data: Vec<u8> = (0..data_len).map(|i| ((i * 193) % 256) as u8).collect();

    let ours = RsCodec::with_config(RsConfig::new(n, p).blocksize(1024)).unwrap();
    let baseline = GfRsCodec::new(n, p).unwrap();

    let shards = ours.encode(&data).unwrap();
    let shard_len = shards[0].len();
    let data_refs: Vec<&[u8]> = shards[..n].iter().map(|s| s.as_slice()).collect();

    let mut group = c.benchmark_group("rs10_4_codec");
    group.throughput(Throughput::Bytes(data_len as u64));

    group.bench_function("ours/encode", |b| {
        let mut parity = vec![vec![0u8; shard_len]; p];
        b.iter(|| {
            let mut refs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
            ours.encode_parity(&data_refs, &mut refs).unwrap();
        });
    });
    group.bench_function("baseline/encode", |b| {
        let mut parity = vec![vec![0u8; shard_len]; p];
        b.iter(|| {
            let mut refs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
            baseline.encode_parity(&data_refs, &mut refs).unwrap();
        });
    });

    let mut received: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
    for i in [2, 4, 5, 6] {
        received[i] = None;
    }
    group.bench_function("ours/decode", |b| {
        b.iter(|| ours.decode(&received, data.len()).unwrap());
    });

    let bshards = baseline.encode(&data).unwrap();
    let mut breceived: Vec<Option<Vec<u8>>> = bshards.into_iter().map(Some).collect();
    for i in [2, 4, 5, 6] {
        breceived[i] = None;
    }
    group.bench_function("baseline/decode", |b| {
        b.iter(|| baseline.decode(&breceived, data.len()).unwrap());
    });
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = codec_compare
}
criterion_main!(benches);
