//! Criterion benchmark of RS(10,4) encoding throughput per optimization
//! stage — the statistical companion of `--bin table_7_5_stages`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ec_bench::{enc_base_slp, BenchRunner};
use slp_optimizer::{fuse, schedule_dfs, xor_repair};
use xor_runtime::Kernel;

fn encode_stages(c: &mut Criterion) {
    let mb = 4 * 1_000_000; // smaller than the table runs: criterion repeats a lot
    let base = enc_base_slp(10, 4);
    let co = xor_repair(&base).0;
    let fu = fuse(&co);
    let dfs = schedule_dfs(&fu);

    let mut group = c.benchmark_group("rs10_4_encode");
    group.throughput(Throughput::Bytes(mb as u64));
    for (name, slp) in [
        ("base", &base),
        ("compress", &co),
        ("fuse", &fu),
        ("schedule", &dfs),
    ] {
        let mut runner = BenchRunner::new(slp, 1024, Kernel::Auto, mb);
        group.bench_function(name, |b| b.iter(|| runner.run_once()));
    }
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = encode_stages
}
criterion_main!(benches);
