//! Criterion companion of `--bin thread_scaling`: encode and decode of
//! RS(10,4) through the parallel execution engine at several worker
//! counts, on a multi-megabyte stripe.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ec_core::{RsCodec, RsConfig};
use xor_runtime::default_parallelism;

fn parallel_scaling(c: &mut Criterion) {
    let (n, p) = (10usize, 4usize);
    let data_len = 4 * 1_000_000;
    let data: Vec<u8> = (0..data_len).map(|i| ((i * 131 + 5) % 256) as u8).collect();

    let mut counts = vec![1usize];
    let mut t = 2;
    while t <= default_parallelism() {
        counts.push(t);
        t *= 2;
    }

    let mut group = c.benchmark_group("rs10_4_threads");
    group.throughput(Throughput::Bytes(data_len as u64));
    for &threads in &counts {
        let codec = RsCodec::with_config(RsConfig::new(n, p).parallelism(threads)).unwrap();
        let shards = codec.encode(&data).unwrap();
        let shard_len = shards[0].len();
        let data_refs: Vec<&[u8]> = shards[..n].iter().map(Vec::as_slice).collect();

        group.bench_function(BenchmarkId::new("encode", threads), |b| {
            let mut parity = vec![vec![0u8; shard_len]; p];
            b.iter(|| {
                let mut refs: Vec<&mut [u8]> =
                    parity.iter_mut().map(Vec::as_mut_slice).collect();
                codec.encode_parity(&data_refs, &mut refs).unwrap();
            });
        });

        let mut received: Vec<Option<Vec<u8>>> =
            shards.iter().cloned().map(Some).collect();
        for i in [2, 4, 5, 6] {
            received[i] = None;
        }
        group.bench_function(BenchmarkId::new("decode", threads), |b| {
            b.iter(|| codec.decode(&received, data.len()).unwrap());
        });
    }
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = configure();
    targets = parallel_scaling
}
criterion_main!(benches);
