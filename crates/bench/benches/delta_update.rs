//! Delta-update bench: single-shard parity update vs full re-encode.
//!
//! The read-modify-write workload of production erasure-coded storage:
//! one data shard of an RS(n, p) stripe changes and parity must follow.
//! The full path re-encodes all `n` columns; the delta path runs one
//! cached *column* program over `old ⊕ new` and accumulates into parity.
//! This bench reports both the static XOR-count reduction (provable from
//! the SLP metrics) and the measured wall-clock speedup.
//!
//! ```text
//! cargo bench --bench delta_update
//! ```
//!
//! Knobs: `BENCH_MB`, `BENCH_REPS` (see `ec_bench`).

use ec_bench::{print_env_header, reps, rule, time_per_rep, workload_bytes};
use ec_core::{RsCodec, RsConfig};

fn main() {
    print_env_header("Delta parity updates: one-column programs vs full re-encode");

    let data_bytes = workload_bytes();
    println!("workload: {} MB per stripe | reps: {}", data_bytes / 1_000_000, reps());
    println!();
    println!(
        "{:>8} | {:>9} | {:>9} | {:>9} | {:>12} | {:>12} | {:>8}",
        "code", "full #⊕", "col #⊕", "avg col⊕", "encode s", "update s", "speedup"
    );
    println!("{}", rule(86));

    for (n, p) in [(4usize, 2usize), (6, 3), (10, 4)] {
        let codec = RsCodec::with_config(RsConfig::new(n, p)).expect("valid params");
        let shard_len = (data_bytes / n / 8) * 8;
        let data: Vec<Vec<u8>> = (0..n)
            .map(|k| (0..shard_len).map(|i| ((i * 131 + k * 17 + 3) % 256) as u8).collect())
            .collect();
        let new_shard: Vec<u8> =
            (0..shard_len).map(|i| ((i * 53 + 11) % 256) as u8).collect();
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let mut parity = vec![vec![0u8; shard_len]; p];
        {
            let mut prefs: Vec<&mut [u8]> =
                parity.iter_mut().map(Vec::as_mut_slice).collect();
            codec.encode_parity(&refs, &mut prefs).expect("encode");
        }

        // Static cost: column programs vs the full encode program.
        // Column 0 of the power matrix is all-ones (a pure copy, 0 XORs);
        // bench a middle column and report the per-column average too.
        let full_xors = codec.encode_slp().xor_count();
        let col = n / 2;
        let col_xors = codec.update_slp(col).expect("column").xor_count();
        let avg_xors = (0..n)
            .map(|i| codec.update_slp(i).expect("column").xor_count())
            .sum::<usize>() as f64
            / n as f64;

        let t_full = time_per_rep(reps(), || {
            let mut prefs: Vec<&mut [u8]> =
                parity.iter_mut().map(Vec::as_mut_slice).collect();
            codec.encode_parity(&refs, &mut prefs).expect("encode");
        });
        let t_update = time_per_rep(reps(), || {
            let mut prefs: Vec<&mut [u8]> =
                parity.iter_mut().map(Vec::as_mut_slice).collect();
            // One write: old shard → new_shard (and back next rep —
            // XOR is an involution, so alternating keeps parity exact).
            codec
                .update_parity(col, &data[col], &new_shard, &mut prefs)
                .expect("update");
            codec
                .update_parity(col, &new_shard, &data[col], &mut prefs)
                .expect("update back");
        });
        // t_update covers TWO updates; report one.
        let t_update = t_update / 2.0;

        println!(
            "RS({n:>2},{p}) | {:>9} | {:>9} | {:>9.1} | {:>12.6} | {:>12.6} | {:>7.2}x",
            full_xors, col_xors, avg_xors, t_full, t_update, t_full / t_update
        );
        assert!(
            col_xors < full_xors,
            "delta program must execute strictly fewer XORs than full encode"
        );
    }

    println!();
    println!(
        "update_parity touches 1 data column + p parity shards; encode_parity \
         touches all n columns — the speedup grows with n."
    );
}
