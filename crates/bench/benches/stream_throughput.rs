//! Streaming-archive throughput: MB/s of `StreamEncoder` vs chunk size,
//! single-threaded vs pooled execution.
//!
//! The chunk size trades memory (`O(chunk × (n + p))`) against engine
//! utilization: tiny chunks fall into the single-stripe inline path and
//! pay per-chunk framing overhead, large chunks feed the striped pool
//! enough packet bytes to parallelize. Sinks are null writers, so the
//! numbers isolate the encode + framing pipeline from disk speed.
//!
//! ```text
//! cargo bench --bench stream_throughput
//! ```
//!
//! Knobs: `BENCH_MB`, `BENCH_REPS` (see `ec_bench`).

use ec_bench::{print_env_header, reps, rule, time_per_rep, workload_bytes};
use ec_core::{RsCodec, RsConfig};
use ec_stream::StreamEncoder;
use std::io::{Seek, SeekFrom, Write};

/// Swallow frames, count bytes: isolates codec + framing from disk.
struct NullSink(u64);

impl Write for NullSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0 += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Seek for NullSink {
    fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
        if let SeekFrom::Start(o) = pos {
            self.0 = o;
        }
        Ok(self.0)
    }
}

fn main() {
    print_env_header("Streaming archive encode throughput vs chunk size");

    let (n, p) = (10usize, 4usize);
    let total = workload_bytes().max(1 << 20);
    let input: Vec<u8> = (0..total).map(|i| (i * 131 + i / 9 + 3) as u8).collect();
    println!(
        "workload: {} MB through RS({n}, {p}) per rep | reps: {}",
        total / 1_000_000,
        reps()
    );
    println!();
    println!(
        "{:>10} | {:>14} | {:>14} | {:>8}",
        "chunk", "single MB/s", "pooled MB/s", "speedup"
    );
    println!("{}", rule(56));

    for chunk in [64 << 10, 256 << 10, 1 << 20, 4 << 20] {
        let mut rates = [0.0f64; 2];
        for (slot, parallelism) in [(0usize, 1usize), (1, 0)] {
            let codec = RsCodec::with_config(
                RsConfig::new(n, p).parallelism(parallelism),
            )
            .expect("valid params");
            let secs = time_per_rep(reps(), || {
                let sinks: Vec<NullSink> =
                    (0..codec.total_shards()).map(|_| NullSink(0)).collect();
                let mut enc =
                    StreamEncoder::new(&codec, chunk, sinks).expect("encoder");
                enc.write_all(&input).expect("stream");
                enc.finalize().expect("finalize");
            });
            rates[slot] = total as f64 / secs / 1e6;
        }
        println!(
            "{:>7} KiB | {:>14.0} | {:>14.0} | {:>7.2}x",
            chunk >> 10,
            rates[0],
            rates[1],
            rates[1] / rates[0]
        );
    }
    println!();
    println!(
        "single = parallelism(1) (inline, allocation-free steady state); \
         pooled = parallelism(0) (striped across the global pool)"
    );

    tuned_vs_paper_defaults(n, p, &input, total);
}

/// Autotuned engine defaults vs the static paper defaults, end to end
/// through the streaming encoder. `RsConfig::new` already starts from
/// the tuned profile; the paper-default rows pin `B = 1024` and kernel
/// auto-resolution explicitly, which is exactly what the engine shipped
/// before the autotuner existed.
fn tuned_vs_paper_defaults(n: usize, p: usize, input: &[u8], total: usize) {
    let chunk = 1 << 20;
    println!();
    println!("TUNED vs paper defaults (1 MiB chunks):");
    let defaults = ec_tune::engine_defaults();
    let configs = [
        ("paper (B=1024, auto kernel)", {
            let d = ec_tune::EngineDefaults::PAPER;
            RsConfig::new(n, p).blocksize(d.blocksize).kernel(d.kernel).parallelism(d.parallelism)
        }),
        (
            if defaults == ec_tune::EngineDefaults::PAPER {
                "tuned   (autotuner off: same as paper)"
            } else {
                "tuned   (profile-fed RsConfig::new)"
            },
            RsConfig::new(n, p),
        ),
    ];
    for (label, cfg) in configs {
        let codec = RsCodec::with_config(cfg).expect("valid params");
        let secs = time_per_rep(reps(), || {
            let sinks: Vec<NullSink> =
                (0..codec.total_shards()).map(|_| NullSink(0)).collect();
            let mut enc = StreamEncoder::new(&codec, chunk, sinks).expect("encoder");
            enc.write_all(input).expect("stream");
            enc.finalize().expect("finalize");
        });
        println!("  {label:<40} {:>8.0} MB/s", total as f64 / secs / 1e6);
    }
}
