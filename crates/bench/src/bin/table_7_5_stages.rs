//! §7.5 (and the §2.1 summary bar chart) — static measures and throughput
//! of `P_enc` and `P_dec{2,4,5,6}` after each optimization stage, RS(10,4),
//! B = 1K.
//!
//! Paper (intel, 1K):
//! ```text
//! P_enc:  #⊕ 755→385→146(insts)   #M 2265→1155→677   NVar 32→385→146→88
//!         CCap 92→447→224→167     GB/s 4.03→4.36→7.50→8.92
//! P_dec:  #⊕ 1368→511→206         #M 4104→1533→923   NVar 32→511→206→125
//!         CCap 89→585→283→205     GB/s 2.35→3.32→5.51→6.67
//! ```
//! Note: for fused stages the paper reports the *instruction count* in its
//! `#⊕` row (scalar XOR operations are invariant under fusion); we print
//! both.

use ec_bench::{dec_base_slp, enc_base_slp, print_env_header, reps, rule, workload_bytes, BenchRunner};
use slp::Slp;
use slp_optimizer::{fuse, schedule_dfs, xor_repair, StageMetrics};
use xor_runtime::Kernel;

fn stage_row(name: &str, slp: &Slp, blocksize: usize) {
    let m = StageMetrics::of(slp);
    let mut r = BenchRunner::new(slp, blocksize, Kernel::Auto, workload_bytes());
    let gbps = r.throughput(reps());
    println!(
        "{:>22} | {:>6} | {:>6} | {:>6} | {:>5} | {:>5} | {:>7.2}",
        name,
        m.xors,
        slp.instrs.len(),
        m.mem,
        m.nvar,
        m.ccap,
        gbps
    );
}

fn run(label: &str, base: &Slp, blocksize: usize) {
    println!("--- {label} (B = {blocksize})");
    println!(
        "{:>22} | {:>6} | {:>6} | {:>6} | {:>5} | {:>5} | {:>7}",
        "stage", "#⊕ops", "insts", "#M", "NVar", "CCap", "GB/s"
    );
    println!("{}", rule(78));
    let co = xor_repair(base).0;
    let fu = fuse(&co);
    let dfs = schedule_dfs(&fu);
    stage_row("Base", base, blocksize);
    stage_row("Co = XorRePair", &co, blocksize);
    stage_row("Fu(Co)", &fu, blocksize);
    stage_row("Dfs(Fu(Co))", &dfs, blocksize);
    println!();
}

fn main() {
    print_env_header("Table 7.5 / §2.1 summary: per-stage metrics and throughput, RS(10,4)");
    let blocksize = 1024; // the paper's intel pick
    run("P_enc", &enc_base_slp(10, 4), blocksize);
    run("P_dec {2,4,5,6}", &dec_base_slp(10, 4, &[2, 4, 5, 6]), blocksize);
    println!("paper (intel 1K): enc 4.03 → 4.36 → 7.50 → 8.92 GB/s;");
    println!("                  dec 2.35 → 3.32 → 5.51 → 6.67 GB/s.");
    println!("expected shape: each stage increases throughput; Fuse is the biggest jump.");
}
