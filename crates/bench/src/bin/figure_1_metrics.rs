//! Figure 1 — static measures (#⊕, #M, NVar, CCap) of the fully optimized
//! encode and decode SLPs across the codec grid RS(8..10, 2..4).
//!
//! Decode uses the paper's erasure pattern `{2,4,5,6}` truncated to the
//! parity count (the paper does not state its Figure-1 pattern; §7.5
//! establishes `{2,4,5,6}` for RS(10,4), which we reproduce exactly).
//!
//! Paper values (enc/dec): e.g. RS(10,4): 146/206, 677/923, 88/125,
//! 167/205; RS(8,2): 26/65, 180/286, 17/38, 80/102.

use ec_bench::{dec_base_slp, enc_base_slp, paper_decode_pattern, rule};
use slp_optimizer::{optimize, OptConfig};
use slp::{ccap, Slp};

fn measures(slp: &Slp) -> (usize, usize, usize, usize) {
    // The paper's Figure-1 "#⊕" is the instruction count of the fused
    // program (see §7.5); report that for comparability.
    (slp.instrs.len(), slp.mem_accesses(), slp.nvar(), ccap(slp))
}

fn main() {
    println!("== Figure 1: measures of optimized coding SLPs, Dfs(Fu(XorRePair(P)))\n");
    println!(
        "{:>9} | {:>11} | {:>11} | {:>11} | {:>11}",
        "codec", "#⊕ Enc/Dec", "#M Enc/Dec", "NVar E/D", "CCap E/D"
    );
    println!("{}", rule(65));
    for p in [4usize, 3, 2] {
        for n in [8usize, 9, 10] {
            let enc = optimize(&enc_base_slp(n, p), OptConfig::FULL_DFS);
            let lost = paper_decode_pattern(p);
            let dec = optimize(&dec_base_slp(n, p, &lost), OptConfig::FULL_DFS);
            let (ex, em, en, ec) = measures(&enc);
            let (dx, dm, dn, dc) = measures(&dec);
            println!(
                "{:>9} | {:>5}/{:<5} | {:>5}/{:<5} | {:>5}/{:<5} | {:>5}/{:<5}",
                format!("RS({n},{p})"),
                ex, dx, em, dm, en, dn, ec, dc
            );
        }
    }
    println!();
    println!("paper Figure 1 (enc/dec): RS(8,4) 121/170 543/747 79/102 143/166");
    println!("                          RS(10,4) 146/206 677/923 88/125 167/205");
    println!("                          RS(10,2) 30/77 222/352 19/50 98/130");
}
