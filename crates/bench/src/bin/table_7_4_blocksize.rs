//! §7.4 — how the blocking parameter `B` affects throughput for
//! (Case 1) the *uncompressed but fused* encoder and (Case 2) the *fully
//! optimized* encoder under both scheduling heuristics. RS(10,4).
//!
//! Paper (intel, GB/s):
//! ```text
//! Case 1 (P_enc fused):  0.87 1.73 2.85 4.08 5.29 5.78 4.36  (64…4K)
//! Case 2 greedy:         2.29 4.00 6.02 7.61 8.68 8.37 7.24
//! Case 2 dfs:            2.32 3.97 6.09 7.37 8.92 8.55 7.64
//! ```

use ec_bench::{enc_base_slp, print_env_header, reps, rule, workload_bytes, BenchRunner};
use slp_optimizer::{fuse, schedule_dfs, schedule_greedy, xor_repair, StageMetrics};
use xor_runtime::Kernel;

const L1_BYTES: usize = 32 * 1024;

fn main() {
    print_env_header("Table 7.4: blocksize sweep — fused-only vs fully optimized, RS(10,4)");
    let base = enc_base_slp(10, 4);
    let fused_only = fuse(&base);
    let fuco = fuse(&xor_repair(&base).0);
    let dfs = schedule_dfs(&fuco);

    let blocksizes = [64usize, 128, 256, 512, 1024, 2048, 4096];
    let fmt_b = |b: usize| if b >= 1024 { format!("{}K", b / 1024) } else { b.to_string() };

    print!("{:>22} |", "program");
    for b in blocksizes {
        print!(" {:>6}", fmt_b(b));
    }
    println!();
    println!("{}", rule(24 + 7 * blocksizes.len()));

    // Case 1: uncompressed but fused (P_enc^{+F}).
    {
        let m = StageMetrics::of(&fused_only);
        print!("{:>22} |", "Case1 fused-only");
        for b in blocksizes {
            let mut r = BenchRunner::new(&fused_only, b, Kernel::Auto, workload_bytes());
            print!(" {:>6.2}", r.throughput(reps()));
        }
        println!("   (NVar={} CCap={})", m.nvar, m.ccap);
    }

    // Case 2: fully optimized, greedy (capacity = L1 / B blocks) and DFS.
    {
        print!("{:>22} |", "Case2 full (greedy)");
        for b in blocksizes {
            let greedy = schedule_greedy(&fuco, (L1_BYTES / b).max(2));
            let mut r = BenchRunner::new(&greedy, b, Kernel::Auto, workload_bytes());
            print!(" {:>6.2}", r.throughput(reps()));
        }
        println!();

        let m = StageMetrics::of(&dfs);
        print!("{:>22} |", "Case2 full (dfs)");
        for b in blocksizes {
            let mut r = BenchRunner::new(&dfs, b, Kernel::Auto, workload_bytes());
            print!(" {:>6.2}", r.throughput(reps()));
        }
        println!("   (NVar={} CCap={})", m.nvar, m.ccap);
    }

    println!();
    println!("paper (intel): Case1 peaks at 2K (5.78), full-dfs peaks at 1K (8.92);");
    println!("expected shape: full > fused-only everywhere; peak in the 1K–2K region.");
}
