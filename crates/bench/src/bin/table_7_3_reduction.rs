//! §7.3 — average reduction ratios of the optimizer stages over all 1002
//! RS(10,4) coding SLPs (1 encoding + 1001 decoding; the one parity-only
//! pattern has an empty program and is excluded, leaving 1001 programs).
//!
//! Reproduces three tables:
//! 1. XOR reduction: `Avg #⊕(RePair(P))/#⊕(P)` (paper: 42.1 %) and
//!    XorRePair (paper: 40.8 %); Zhou & Tian's best heuristic: ~65 %.
//! 2. Memory accesses `#M`: Co/P 40.8 %, Fu/P 35.1 %, Fu(Co)/Co 59.2 %,
//!    Fu(Co)/P 24.1 %.
//! 3. NVar and CCap: Co/P 1552 %/498 %, Fu/P 100 %/98.7 %,
//!    Fu(Co)/Co 38.9 %/51.2 %, Dfs(Fu(Co))/Co 24.5 %/40.0 %.
//!
//! `BENCH_SAMPLE=n` limits the sweep to the encoding SLP plus `n` evenly
//! spaced decode patterns for a quick look.

use ec_bench::{decode_patterns, dec_base_slp, enc_base_slp, rule, sample_size};
use slp::{ccap, Slp};
use slp_optimizer::{fuse, repair, schedule_dfs, xor_repair};

struct Averager {
    sums: Vec<f64>,
    count: usize,
}

impl Averager {
    fn new(k: usize) -> Averager {
        Averager { sums: vec![0.0; k], count: 0 }
    }
    fn add(&mut self, vals: &[f64]) {
        for (s, v) in self.sums.iter_mut().zip(vals) {
            *s += v;
        }
        self.count += 1;
    }
    fn avg(&self, i: usize) -> f64 {
        100.0 * self.sums[i] / self.count as f64
    }
}

fn main() {
    println!("== Table 7.3: average reduction ratios over the RS(10,4) coding SLPs");

    let mut programs: Vec<(String, Slp)> = vec![("enc".into(), enc_base_slp(10, 4))];
    let patterns = decode_patterns(10, 4);
    let selected: Vec<Vec<usize>> = match sample_size() {
        Some(k) if k < patterns.len() => {
            let step = patterns.len() / k.max(1);
            patterns.into_iter().step_by(step.max(1)).take(k).collect()
        }
        _ => patterns,
    };
    for lost in &selected {
        programs.push((format!("dec{lost:?}"), dec_base_slp(10, 4, lost)));
    }
    println!("programs: {} (1 encoding + {} decoding)\n", programs.len(), selected.len());

    // indices: 0 repair_xor, 1 xorrepair_xor,
    //          2 co_mem, 3 fu_mem, 4 fuco_over_co_mem, 5 fuco_mem,
    //          6 co_nvar, 7 fu_nvar, 8 fuco_over_co_nvar, 9 dfs_over_co_nvar,
    //          10 co_ccap, 11 fu_ccap, 12 fuco_over_co_ccap, 13 dfs_over_co_ccap
    let mut acc = Averager::new(14);

    for (i, (_, base)) in programs.iter().enumerate() {
        let (rp, _) = repair(base);
        let (co, _) = xor_repair(base);
        let fu_only = fuse(base); // Fu(P): fuse the uncompressed program
        let fuco = fuse(&co);
        let dfs = schedule_dfs(&fuco);

        let b_x = base.xor_count() as f64;
        let b_m = base.mem_accesses() as f64;
        let b_n = base.nvar() as f64;
        let b_c = ccap(base) as f64;
        let co_m = co.mem_accesses() as f64;
        let co_n = co.nvar() as f64;
        let co_c = ccap(&co) as f64;

        acc.add(&[
            rp.xor_count() as f64 / b_x,
            co.xor_count() as f64 / b_x,
            co_m / b_m,
            fu_only.mem_accesses() as f64 / b_m,
            fuco.mem_accesses() as f64 / co_m,
            fuco.mem_accesses() as f64 / b_m,
            co_n / b_n,
            fu_only.nvar() as f64 / b_n,
            fuco.nvar() as f64 / co_n,
            dfs.nvar() as f64 / co_n,
            co_c / b_c,
            ccap(&fu_only) as f64 / b_c,
            ccap(&fuco) as f64 / co_c,
            ccap(&dfs) as f64 / co_c,
        ]);
        if (i + 1) % 100 == 0 {
            eprintln!("  … {}/{} programs", i + 1, programs.len());
        }
    }

    println!("Reducing operators (#⊕):");
    println!("{}", rule(64));
    println!("  Avg RePair(P)/P    = {:6.1} %   (paper: 42.1 %)", acc.avg(0));
    println!("  Avg XorRePair(P)/P = {:6.1} %   (paper: 40.8 %)", acc.avg(1));
    println!("  (best bit-matrix heuristic in [Zhou & Tian]: ~65 %)");
    println!();
    println!("Reducing memory access (#M):");
    println!("{}", rule(64));
    println!("  Co(P)/P        = {:6.1} %   (paper: 40.8 %)", acc.avg(2));
    println!("  Fu(P)/P        = {:6.1} %   (paper: 35.1 %)", acc.avg(3));
    println!("  Fu(Co(P))/Co(P)= {:6.1} %   (paper: 59.2 %)", acc.avg(4));
    println!("  Fu(Co(P))/P    = {:6.1} %   (paper: 24.1 %)", acc.avg(5));
    println!();
    println!("Reducing variables and required cache size:");
    println!("{}", rule(64));
    println!("             Co(P)/P   Fu(P)/P   Fu(Co)/Co   Dfs(Fu(Co))/Co");
    println!(
        "  NVar     {:7.1} % {:8.1} % {:9.1} % {:12.1} %",
        acc.avg(6), acc.avg(7), acc.avg(8), acc.avg(9)
    );
    println!(
        "  CCap     {:7.1} % {:8.1} % {:9.1} % {:12.1} %",
        acc.avg(10), acc.avg(11), acc.avg(12), acc.avg(13)
    );
    println!();
    println!("paper:  NVar  1552 %    100 %      38.9 %        24.5 %");
    println!("        CCap   498 %   98.7 %      51.2 %        40.0 %");
}
