//! §2.1 — the headline bar chart: encoding throughput of RS(10,4) after
//! each optimization stage (Base → Compress → Fuse → Schedule).
//!
//! Paper (intel, B = 1K): 4.03 → 4.36 → 7.50 → 8.92 GB/s.

use ec_bench::{enc_base_slp, print_env_header, reps, workload_bytes, BenchRunner};
use slp_optimizer::{fuse, schedule_dfs, xor_repair};
use xor_runtime::Kernel;

fn main() {
    print_env_header("§2.1 summary: RS(10,4) encoding throughput per stage, B = 1K");
    let base = enc_base_slp(10, 4);
    let co = xor_repair(&base).0;
    let fu = fuse(&co);
    let dfs = schedule_dfs(&fu);

    let stages = [
        ("Base", &base),
        ("+Compress", &co),
        ("+Fuse", &fu),
        ("+Schedule", &dfs),
    ];
    let mut results = Vec::new();
    for (name, slp) in stages {
        let mut r = BenchRunner::new(slp, 1024, Kernel::Auto, workload_bytes());
        results.push((name, r.throughput(reps())));
    }
    let max = results.iter().map(|(_, g)| *g).fold(0.0f64, f64::max);
    for (name, gbps) in &results {
        let bar = "█".repeat((gbps / max * 40.0) as usize);
        println!("{name:>10} {gbps:>6.2} GB/s  {bar}");
    }
    println!("\npaper (intel): 4.03 → 4.36 → 7.50 → 8.92 GB/s");
    println!("expected shape: monotone growth; fusing is the largest single jump.");
}
