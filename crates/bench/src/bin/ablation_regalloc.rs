//! §6.3 ablation — why register allocation alone is not enough.
//!
//! The paper argues (via the P_reg example) that renaming variables
//! without reordering shrinks `NVar` and a little of `IOcost` but cannot
//! touch `CCap`, whereas pebble-game scheduling improves all three. This
//! binary quantifies that on the real RS(10,4) programs, plus measured
//! throughput.

use ec_bench::{dec_base_slp, enc_base_slp, print_env_header, reps, rule, workload_bytes, BenchRunner};
use slp::{ccap, iocost, Slp};
use slp_optimizer::{assign_registers, fuse, schedule_dfs, schedule_greedy, xor_repair};
use xor_runtime::Kernel;

fn row(name: &str, slp: &Slp, cache_blocks: usize) {
    let mut r = BenchRunner::new(slp, 1024, Kernel::Auto, workload_bytes());
    println!(
        "{:>28} | {:>5} | {:>5} | {:>9} | {:>7.2}",
        name,
        slp.nvar(),
        ccap(slp),
        iocost(slp, cache_blocks),
        r.throughput(reps())
    );
}

fn run(label: &str, base: &Slp) {
    // abstract cache: 32 KiB L1 / 1 KiB blocks = 32 blocks
    let cache_blocks = 32;
    println!("--- {label} (IOcost at {cache_blocks} blocks ≙ 32 KiB L1 / 1 KiB)");
    println!(
        "{:>28} | {:>5} | {:>5} | {:>9} | {:>7}",
        "program", "NVar", "CCap", "IOcost", "GB/s"
    );
    println!("{}", rule(68));
    let fuco = fuse(&xor_repair(base).0);
    let reg = assign_registers(&fuco);
    let dfs = schedule_dfs(&fuco);
    let greedy = schedule_greedy(&fuco, cache_blocks);
    row("Fu(Co)  (no allocation)", &fuco, cache_blocks);
    row("RegAlloc(Fu(Co))", &reg, cache_blocks);
    row("Dfs(Fu(Co))", &dfs, cache_blocks);
    row("Greedy(Fu(Co))", &greedy, cache_blocks);
    println!();
}

fn main() {
    print_env_header("§6.3 ablation: register allocation vs pebble-game scheduling");
    run("P_enc RS(10,4)", &enc_base_slp(10, 4));
    run("P_dec {2,4,5,6}", &dec_base_slp(10, 4, &[2, 4, 5, 6]));
    println!("expected (paper §6.3): renaming shrinks NVar but leaves CCap unchanged;");
    println!("scheduling (reordering + renaming) improves NVar, CCap and IOcost together.");
}
