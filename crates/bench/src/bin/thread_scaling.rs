//! Thread-scaling table: encode/decode throughput of the fully optimized
//! RS(10,4) codec on a 10 MB stripe, as the parallel execution engine's
//! worker count grows.
//!
//! The engine stripes the packet range into blocksize-aligned slices and
//! runs them on a persistent `ExecPool` (one grow-on-demand arena per
//! worker), so throughput should scale with cores until the memory bus
//! saturates. On a single-core host every row collapses to the serial
//! number — the table reports whatever the hardware allows.
//!
//! ```text
//! cargo run --release -p xorslp-bench --bin thread_scaling
//! ```
//!
//! Knobs: `BENCH_MB`, `BENCH_REPS` (see `ec_bench`), and
//! `BENCH_MAX_THREADS` (default: 2× available parallelism).

use ec_bench::{print_env_header, reps, rule, time_per_rep, workload_bytes};
use ec_core::{RsCodec, RsConfig};
use xor_runtime::default_parallelism;

fn throughput_gbps(bytes: usize, reps: usize, f: impl FnMut()) -> f64 {
    bytes as f64 / time_per_rep(reps, f) / 1e9
}

fn main() {
    print_env_header("Thread scaling: RS(10,4) encode/decode across the ExecPool");

    let (n, p) = (10usize, 4usize);
    let data_bytes = workload_bytes();
    let data: Vec<u8> = (0..data_bytes).map(|i| ((i * 193 + 7) % 256) as u8).collect();

    let max_threads: usize = std::env::var("BENCH_MAX_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| (2 * default_parallelism()).max(2));
    let mut thread_counts = vec![1usize];
    let mut t = 2;
    while t <= max_threads {
        thread_counts.push(t);
        t *= 2;
    }

    println!(
        "workload: {} MB over {n}+{p} shards | available parallelism: {}",
        data_bytes / 1_000_000,
        default_parallelism()
    );
    println!();
    println!(
        "{:>8} | {:>12} | {:>12} | {:>9} | {:>9}",
        "threads", "encode GB/s", "decode GB/s", "enc ×", "dec ×"
    );
    println!("{}", rule(64));

    let mut enc_base = 0.0f64;
    let mut dec_base = 0.0f64;
    let mut best: Option<(usize, f64)> = None;
    for &threads in &thread_counts {
        let codec = RsCodec::with_config(RsConfig::new(n, p).parallelism(threads))
            .expect("valid params");
        let shards = codec.encode(&data).expect("encode");
        let shard_len = shards[0].len();
        let data_refs: Vec<&[u8]> = shards[..n].iter().map(Vec::as_slice).collect();

        let mut parity = vec![vec![0u8; shard_len]; p];
        let enc = throughput_gbps(data_bytes, reps(), || {
            let mut refs: Vec<&mut [u8]> =
                parity.iter_mut().map(Vec::as_mut_slice).collect();
            codec.encode_parity(&data_refs, &mut refs).expect("encode_parity");
        });

        let mut received: Vec<Option<Vec<u8>>> =
            shards.iter().cloned().map(Some).collect();
        for i in [2, 4, 5, 6] {
            received[i] = None;
        }
        let dec = throughput_gbps(data_bytes, reps(), || {
            let out = codec.decode(&received, data.len()).expect("decode");
            assert_eq!(out.len(), data.len());
        });

        if threads == 1 {
            enc_base = enc;
            dec_base = dec;
        } else if best.is_none_or(|(_, b)| enc > b) {
            best = Some((threads, enc));
        }
        println!(
            "{:>8} | {:>12.2} | {:>12.2} | {:>8.2}x | {:>8.2}x",
            threads,
            enc,
            dec,
            enc / enc_base,
            dec / dec_base
        );
    }

    println!();
    match best {
        Some((threads, enc)) if enc > enc_base => println!(
            "multi-thread encode beats single-thread: {threads} threads at \
             {enc:.2} GB/s vs {enc_base:.2} GB/s ({:.2}x)",
            enc / enc_base
        ),
        Some((threads, enc)) => println!(
            "no multi-thread win on this host (best: {threads} threads at \
             {enc:.2} GB/s vs {enc_base:.2} GB/s serial) — expected on \
             single-core machines"
        ),
        None => println!("only one thread count measured"),
    }
}
