//! §7.2 — throughput of the *unoptimized* `P_enc` (RS(10,4)) across
//! blocksizes, comparing the byte-wise `xor1` kernel with the 32-byte SIMD
//! `xor32` kernel.
//!
//! Paper's table (intel row, GB/s):
//! ```text
//!            xor1                                    xor32
//! B:         64    128   256   512   1K    2K    4K    4K
//! intel      0.16  0.62  1.12  2.05  3.02  4.03  4.78  4.72
//! ```
//! (the paper sweeps blocksize under xor1 and gives 4K under xor32; we
//! sweep both kernels over the full range, which subsumes that table.)

use ec_bench::{enc_base_slp, print_env_header, reps, rule, workload_bytes, BenchRunner};
use xor_runtime::Kernel;

fn main() {
    print_env_header("Table 7.2: unoptimized P_enc throughput vs blocksize, RS(10,4)");
    let slp = enc_base_slp(10, 4);
    let blocksizes = [64usize, 128, 256, 512, 1024, 2048, 4096];

    print!("{:>10} |", "kernel");
    for b in blocksizes {
        print!(" {:>7}", if b >= 1024 { format!("{}K", b / 1024) } else { b.to_string() });
    }
    println!();
    println!("{}", rule(12 + 8 * blocksizes.len()));

    for kernel in [Kernel::Scalar, Kernel::Auto.resolve()] {
        print!("{:>10} |", kernel.name());
        for b in blocksizes {
            let mut runner = BenchRunner::new(&slp, b, kernel, workload_bytes());
            print!(" {:>7.2}", runner.throughput(reps()));
        }
        println!();
    }
    println!();
    println!("paper (intel, xor1): 0.16 0.62 1.12 2.05 3.02 4.03 4.78; xor32 @4K: 4.72 GB/s");
    println!("expected shape: SIMD ≫ scalar; throughput grows with B, flattens past ~2K.");
}
