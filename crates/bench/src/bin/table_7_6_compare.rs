//! §7.6 — end-to-end throughput comparison: our optimized XOR-based codec
//! vs the ISA-L-style table-driven baseline, for RS(d, 4), RS(d, 3) and
//! RS(d, 2), encode and decode.
//!
//! Paper (intel, B = 1K, GB/s, Ours-Enc / Ours-Dec / ISA-L-Enc / ISA-L-Dec):
//! ```text
//! RS(8,4)  8.86/6.78  7.18/7.04      RS(8,3)  12.32/8.82   9.09/9.25
//! RS(9,4)  8.83/6.71  6.91/6.58      RS(9,3)  11.97/8.27   7.31/7.92
//! RS(10,4) 8.92/6.67  6.79/4.88      RS(10,3) 11.78/8.89   6.78/7.93
//!                                    RS(8,2)  18.79/14.59 12.99/13.34
//!                                    RS(10,2) 18.98/14.66 12.12/12.61
//! ```
//! The claim to reproduce: *ours beats the table-driven baseline on
//! encode at every codec, and is at least on par on decode.*

use ec_bench::{
    dec_base_slp, enc_base_slp, paper_decode_pattern, print_env_header, reps, rule,
    workload_bytes, BenchRunner,
};
use gf_baseline::{GfBackend, GfRsCodec};
use slp_optimizer::{optimize, OptConfig};
use std::time::Instant;
use xor_runtime::Kernel;

/// Baseline encode throughput: parity of `n` shards totalling the
/// workload, GB/s of input data.
fn baseline_encode_gbps(n: usize, p: usize) -> f64 {
    let codec = GfRsCodec::with_options(n, p, gf256::MatrixKind::IsalPower, GfBackend::Auto)
        .expect("baseline codec");
    let shard_len = workload_bytes() / n;
    let data: Vec<Vec<u8>> = (0..n)
        .map(|i| (0..shard_len).map(|t| ((t * 31 + i * 7) % 256) as u8).collect())
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
    let mut parity = vec![vec![0u8; shard_len]; p];
    let r = reps();
    // warm-up
    for _ in 0..3 {
        let mut prefs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
        codec.encode_parity(&refs, &mut prefs).expect("encode");
    }
    let t = Instant::now();
    for _ in 0..r {
        let mut prefs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
        codec.encode_parity(&refs, &mut prefs).expect("encode");
    }
    (shard_len * n) as f64 * r as f64 / t.elapsed().as_secs_f64() / 1e9
}

/// Baseline decode throughput for the paper's erasure pattern.
fn baseline_decode_gbps(n: usize, p: usize) -> f64 {
    let codec = GfRsCodec::new(n, p).expect("baseline codec");
    let shard_len = workload_bytes() / n;
    let data: Vec<u8> = (0..n * shard_len).map(|t| ((t * 131) % 256) as u8).collect();
    let shards = codec.encode(&data).expect("encode");
    let mut rx: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
    for i in paper_decode_pattern(p) {
        rx[i] = None;
    }
    let r = reps();
    for _ in 0..3 {
        let _ = codec.decode(&rx, data.len()).expect("decode");
    }
    let t = Instant::now();
    for _ in 0..r {
        let _ = codec.decode(&rx, data.len()).expect("decode");
    }
    data.len() as f64 * r as f64 / t.elapsed().as_secs_f64() / 1e9
}

fn ours(n: usize, p: usize, blocksize: usize) -> (f64, f64) {
    let enc = optimize(&enc_base_slp(n, p), OptConfig::FULL_DFS);
    let mut er = BenchRunner::new(&enc, blocksize, Kernel::Auto, workload_bytes());
    let e = er.throughput(reps());

    let dec = optimize(
        &dec_base_slp(n, p, &paper_decode_pattern(p)),
        OptConfig::FULL_DFS,
    );
    let mut dr = BenchRunner::new(&dec, blocksize, Kernel::Auto, workload_bytes());
    let d = dr.throughput(reps());
    (e, d)
}

fn main() {
    print_env_header("Table 7.6: ours vs ISA-L-style baseline (GB/s), B = 1K");
    println!(
        "{:>9} | {:>9} {:>9} | {:>9} {:>9} | {:>11}",
        "codec", "ours-enc", "ours-dec", "base-enc", "base-dec", "enc speedup"
    );
    println!("{}", rule(70));
    for p in [4usize, 3, 2] {
        for n in [8usize, 9, 10] {
            let (oe, od) = ours(n, p, 1024);
            let be = baseline_encode_gbps(n, p);
            let bd = baseline_decode_gbps(n, p);
            println!(
                "{:>9} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {:>10.2}x",
                format!("RS({n},{p})"),
                oe, od, be, bd,
                oe / be
            );
        }
        println!("{}", rule(70));
    }
    println!("paper (intel): ours-enc beats ISA-L at every codec (e.g. RS(10,4):");
    println!("8.92 vs 6.79); decode is on par or better. The *shape* to check here");
    println!("is the enc speedup column staying ≥ 1 and growing at low parity.");
    println!("note: baseline decode includes shard reassembly (allocation); its");
    println!("encode column is the like-for-like kernel comparison.");
}
