//! §8 (future work) — a multilevel look at the abstract cache model.
//!
//! The paper optimizes against L1 only and names Savage's multilevel
//! pebble game as future work. As an analysis-only extension we evaluate
//! `IOcost` of each pipeline stage at *both* an L1-sized and an L2-sized
//! abstract cache, for the paper's blocksizes. This quantifies how much
//! headroom an L2-aware scheduler would have: transfers that the L1 model
//! counts but an L2 model absorbs are exactly the ones software
//! prefetching (the paper's other future-work item) could hide.

use ec_bench::{dec_base_slp, enc_base_slp, rule};
use slp::{iocost, Slp};
use slp_optimizer::{fuse, schedule_dfs, xor_repair};

const L1: usize = 32 * 1024;
const L2: usize = 1024 * 1024;

fn analyze(label: &str, base: &Slp) {
    println!("--- {label}");
    println!(
        "{:>16} | {:>22} | {:>22}",
        "", "IOcost @ L1 (32K/B)", "IOcost @ L2 (1M/B)"
    );
    println!(
        "{:>16} | {:>6} {:>7} {:>7} | {:>6} {:>7} {:>7}",
        "stage", "B=512", "B=1K", "B=2K", "B=512", "B=1K", "B=2K"
    );
    println!("{}", rule(70));
    let co = xor_repair(base).0;
    let fu = fuse(&co);
    let dfs = schedule_dfs(&fu);
    for (name, slp) in [("Base", base), ("Co", &co), ("Fu(Co)", &fu), ("Dfs(Fu(Co))", &dfs)] {
        let costs: Vec<usize> = [L1, L2]
            .iter()
            .flat_map(|&lvl| {
                [512usize, 1024, 2048]
                    .into_iter()
                    .map(move |b| iocost(slp, (lvl / b).max(2)))
            })
            .collect();
        println!(
            "{:>16} | {:>6} {:>7} {:>7} | {:>6} {:>7} {:>7}",
            name, costs[0], costs[1], costs[2], costs[3], costs[4], costs[5]
        );
    }
    println!();
}

fn main() {
    println!("== multilevel abstract-cache analysis (extension of §6/§8)\n");
    analyze("P_enc RS(10,4)", &enc_base_slp(10, 4));
    analyze("P_dec {2,4,5,6}", &dec_base_slp(10, 4, &[2, 4, 5, 6]));
    println!("reading: at L2 capacity the scheduled program's transfers approach the");
    println!("compulsory minimum (one load per input + one store per output), so an");
    println!("L2-aware scheduler has little left to gain — L1 locality is the fight.");
}
