//! §7.6 extension — the specialized two-parity comparison the paper could
//! only quote from Zhou & Tian's study: EVENODD and RDP, implemented here
//! on the same SLP pipeline, against our general RS(k, 2) codec.
//!
//! The paper's table marks several RS(d,2) cells with `·E` (EvenOdd) and
//! `·R` (RDP) as the best specialized results (8–10.6 GB/s on their
//! machines vs their general codec). The claim §7.6 closes with — "our
//! library works well without specializing for low parities" — is what
//! this binary tests locally: general RS(k,2) should be at least in the
//! same league as the specialized codes.

use array_codes::ArrayCodec;
use ec_bench::{enc_base_slp, print_env_header, reps, rule, workload_bytes, BenchRunner};
use slp_optimizer::{optimize, OptConfig};
use xor_runtime::Kernel;

fn main() {
    print_env_header("§7.6 low-parity extension: RS(k,2) vs EVENODD vs RDP");
    println!(
        "{:>5} | {:>22} | {:>8} | {:>7} | {:>7}",
        "k", "code", "#⊕ base", "insts", "enc GB/s"
    );
    println!("{}", rule(62));

    for k in [8usize, 10] {
        // General RS(k,2) through the same pipeline (program-level run).
        {
            let base = enc_base_slp(k, 2);
            let opt = optimize(&base, OptConfig::FULL_DFS);
            let mut runner =
                ec_bench::BenchRunner::new(&opt, 1024, Kernel::Auto, workload_bytes());
            let gbps = runner.throughput(reps());
            println!(
                "{:>5} | {:>22} | {:>8} | {:>7} | {:>7.2}",
                k,
                format!("RS({k},2) general"),
                base.xor_count(),
                opt.instrs.len(),
                gbps
            );
        }

        // EVENODD and RDP, measured program-level like the RS row.
        for codec in [ArrayCodec::evenodd(k), ArrayCodec::rdp(k)] {
            let mut runner =
                BenchRunner::new(codec.encode_slp(), 1024, Kernel::Auto, workload_bytes());
            let gbps = runner.throughput(reps());
            // base XOR count = popcount of the raw parity bit-matrix rows
            let base_xors: usize = {
                let m = match codec.name().starts_with("EVENODD") {
                    true => array_codes::evenodd_parity_bitmatrix(k, codec.prime()),
                    false => array_codes::rdp_parity_bitmatrix(k, codec.prime()),
                };
                (0..m.rows()).map(|r| m.row_popcount(r).saturating_sub(1)).sum()
            };
            println!(
                "{:>5} | {:>22} | {:>8} | {:>7} | {:>7.2}",
                k,
                codec.name(),
                base_xors,
                codec.encode_slp().instrs.len(),
                gbps
            );
        }
        println!("{}", rule(62));
    }
    println!("all rows are program-level over staggered strips (B = 1K). Expected");
    println!("(§7.6's closing claim): the general RS(k,2) pipeline is in the same");
    println!("league as — or better than — the specialized two-parity array codes.");
}
