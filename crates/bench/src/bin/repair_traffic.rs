//! Repair traffic: survivor bytes read to rebuild a single lost shard,
//! RS(10, 4) vs LRC(10, 4, r=5) — equal data shards, equal total parity,
//! so equal storage overhead.
//!
//! The locally-repairable code's pitch is not throughput but *repair
//! I/O*: an MDS code must read `n` survivors to rebuild anything, while
//! LRC rebuilds a single lost shard from its locality group — here 5
//! reads (4 group members + the group's XOR parity) instead of 10. The
//! price is fault tolerance on some patterns (LRC(10,4,5) is not MDS).
//!
//! Method: archive a `BENCH_MB` input with each codec via `ec-stream`,
//! then for every shard index in turn delete that shard file, run
//! `Archive::repair`, and record the survivor bytes the repair actually
//! read (`RepairReport::bytes_read`) and its wall-clock. The assertion
//! printed at the bottom — LRC strictly below RS on every single-loss
//! repair, and in aggregate — is the acceptance metric of the codec
//! registry's locality-aware repair path.

use ec_core::CodecSpec;
use ec_stream::Archive;
use std::path::Path;
use std::time::Instant;

/// Bytes read and wall-clock per lost-shard index.
struct Sweep {
    per_shard: Vec<(usize, u64, f64)>,
    total_read: u64,
    total_secs: f64,
}

fn sweep(spec: &CodecSpec, input: &Path, dir: &Path) -> Sweep {
    let chunk = 1 << 20;
    let archive =
        Archive::create_with_spec(input, dir, spec, chunk).expect("create archive");
    let total = spec.data_shards + spec.parity_shards;
    let mut out = Sweep { per_shard: Vec::new(), total_read: 0, total_secs: 0.0 };
    for lost in 0..total {
        std::fs::remove_file(archive.shard_path(lost)).expect("remove shard");
        let t = Instant::now();
        let report = archive.repair().expect("repair");
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(report.repaired, vec![lost]);
        assert!(archive.verify().expect("verify").all_ok(), "repair left damage");
        out.per_shard.push((lost, report.bytes_read, secs));
        out.total_read += report.bytes_read;
        out.total_secs += secs;
    }
    out
}

fn main() {
    ec_bench::print_env_header("repair_traffic");
    let mb = std::env::var("BENCH_MB")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(10);
    let len = mb * 1_000_000;
    let root = std::env::temp_dir()
        .join(format!("xorslp_repair_traffic_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("mkdir");
    let input = root.join("input.bin");
    let data: Vec<u8> = (0..len).map(|i| ((i * 131 + i / 7) % 251) as u8).collect();
    std::fs::write(&input, &data).expect("write input");

    let rs = CodecSpec::rs(10, 4);
    let lrc = CodecSpec::lrc(10, 4, 5);
    let rs_sweep = sweep(&rs, &input, &root.join("rs"));
    let lrc_sweep = sweep(&lrc, &input, &root.join("lrc"));

    println!(
        "single-shard repair over a {mb} MB archive, {} shards (10 data + 4 parity)\n",
        10 + 4
    );
    println!(
        "{:>5}  {:>16} {:>9}   {:>16} {:>9}",
        "lost", "rs bytes read", "ms", "lrc:5 bytes read", "ms"
    );
    println!("{}", ec_bench::rule(64));
    for ((lost, rs_b, rs_s), (_, lrc_b, lrc_s)) in
        rs_sweep.per_shard.iter().zip(&lrc_sweep.per_shard)
    {
        println!(
            "{lost:>5}  {rs_b:>16} {:>9.2}   {lrc_b:>16} {:>9.2}",
            rs_s * 1e3,
            lrc_s * 1e3
        );
    }
    println!("{}", ec_bench::rule(64));
    println!(
        "{:>5}  {:>16} {:>9.2}   {:>16} {:>9.2}",
        "sum",
        rs_sweep.total_read,
        rs_sweep.total_secs * 1e3,
        lrc_sweep.total_read,
        lrc_sweep.total_secs * 1e3
    );
    println!(
        "\naggregate repair traffic: LRC reads {:.2}x fewer survivor bytes than RS",
        rs_sweep.total_read as f64 / lrc_sweep.total_read as f64
    );

    // The acceptance check: strictly fewer survivor bytes under LRC for
    // every data-shard (and local-parity) loss, never more on any loss
    // (a global parity row legitimately re-encodes from all `n` data
    // shards — exactly RS's floor), and strictly fewer in aggregate.
    for ((lost, rs_b, _), (_, lrc_b, _)) in
        rs_sweep.per_shard.iter().zip(&lrc_sweep.per_shard)
    {
        if *lost < lrc.data_shards + lrc.data_shards / lrc.group_size {
            assert!(
                lrc_b < rs_b,
                "shard {lost}: LRC read {lrc_b} bytes, RS read {rs_b}"
            );
        } else {
            assert!(
                lrc_b <= rs_b,
                "shard {lost}: LRC read {lrc_b} bytes, RS read {rs_b}"
            );
        }
    }
    assert!(lrc_sweep.total_read < rs_sweep.total_read);
    println!("OK: LRC ≤ RS on every single-shard repair, < on data shards and in aggregate");
    let _ = std::fs::remove_dir_all(&root);
}
