//! Shared infrastructure for the benchmark harness that regenerates every
//! table and figure of the paper's evaluation (§7).
//!
//! Each table has a dedicated binary under `src/bin/`; run e.g.
//!
//! ```text
//! cargo run --release -p xorslp-bench --bin table_7_5_stages
//! ```
//!
//! Environment knobs:
//!
//! * `BENCH_MB` — workload size in MB (default 10, as in the paper);
//! * `BENCH_REPS` — repetitions per measurement (default 50);
//! * `BENCH_SAMPLE` — for the 1002-SLP averages, sample this many decode
//!   patterns instead of all 1001 (default: all).

use gf256::{encoding_matrix, GfMatrix, MatrixKind};
use slp::{binary_slp_from_bitmatrix, Slp};
use std::time::Instant;
use xor_runtime::{ExecProgram, Kernel, StripedBuf};

/// Workload size in bytes (`BENCH_MB`, default 10 MB — the paper's size).
pub fn workload_bytes() -> usize {
    std::env::var("BENCH_MB")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(10)
        * 1_000_000
}

/// Repetitions per throughput measurement (`BENCH_REPS`, default 50).
pub fn reps() -> usize {
    std::env::var("BENCH_REPS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(50)
}

/// Optional sampling for the 1002-SLP sweeps (`BENCH_SAMPLE`).
pub fn sample_size() -> Option<usize> {
    std::env::var("BENCH_SAMPLE").ok().and_then(|s| s.parse::<usize>().ok())
}

/// The paper's coding matrix for RS(n, p).
pub fn rs_matrix(n: usize, p: usize) -> GfMatrix {
    encoding_matrix(MatrixKind::IsalPower, n, p)
}

/// The unoptimized (binary-chain) encoding SLP `P_enc`.
pub fn enc_base_slp(n: usize, p: usize) -> Slp {
    let m = rs_matrix(n, p);
    let rows: Vec<usize> = (n..n + p).collect();
    binary_slp_from_bitmatrix(&bitmatrix::BitMatrix::expand_gf_matrix(&m.select_rows(&rows)))
}

/// The unoptimized decoding SLP for an erasure pattern (data losses only).
///
/// # Panics
/// Panics if the pattern loses no data shard or is undecodable.
pub fn dec_base_slp(n: usize, p: usize, lost: &[usize]) -> Slp {
    let m = rs_matrix(n, p);
    let survivors: Vec<usize> = (0..n + p).filter(|i| !lost.contains(i)).collect();
    let inv = m
        .select_rows(&survivors[..n])
        .invert()
        .expect("decodable pattern");
    let lost_data: Vec<usize> = lost.iter().copied().filter(|&i| i < n).collect();
    assert!(!lost_data.is_empty(), "pattern loses no data shard");
    let rec = inv.select_rows(&lost_data);
    binary_slp_from_bitmatrix(&bitmatrix::BitMatrix::expand_gf_matrix(&rec))
}

/// All `C(n+p, p)` erasure patterns that lose at least one data shard
/// (the paper's 1001 decoding matrices for RS(10,4), minus the single
/// parity-only pattern whose program is empty).
pub fn decode_patterns(n: usize, p: usize) -> Vec<Vec<usize>> {
    let total = n + p;
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..p).collect();
    loop {
        if idx.iter().any(|&i| i < n) {
            out.push(idx.clone());
        }
        // next combination
        let mut i = p;
        let mut done = true;
        while i > 0 {
            i -= 1;
            if idx[i] != i + total - p {
                idx[i] += 1;
                for j in i + 1..p {
                    idx[j] = idx[j - 1] + 1;
                }
                done = false;
                break;
            }
        }
        if done {
            return out;
        }
    }
}

/// The default erasure pattern used for decode throughput numbers:
/// the paper's `{2,4,5,6}` for `p = 4`, truncated for smaller parities.
pub fn paper_decode_pattern(p: usize) -> Vec<usize> {
    [2usize, 4, 5, 6][..p.min(4)].to_vec()
}

/// Throughput harness: a compiled program over staggered input strips,
/// measured as `data_bytes × reps / elapsed` after warm-up runs. Inputs
/// and variable buffers use the §7.4 staggered layout.
pub struct BenchRunner {
    prog: ExecProgram,
    inputs: StripedBuf,
    outputs: StripedBuf,
    /// Total input payload (what throughput is normalized by).
    pub data_bytes: usize,
}

impl BenchRunner {
    /// Prepare a runner: `data_bytes` of pseudo-random input split into
    /// the program's `n_inputs` strips.
    pub fn new(slp: &Slp, blocksize: usize, kernel: Kernel, data_bytes: usize) -> BenchRunner {
        let prog = ExecProgram::compile(slp, blocksize, kernel);
        let strip_len = (data_bytes / prog.n_inputs()).max(1);
        let mut inputs = StripedBuf::new(prog.n_inputs(), strip_len, blocksize);
        let mut state = 0x9E3779B97F4A7C15u64;
        inputs.fill_with(|s, i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as usize + s * 31 + i) as u8
        });
        let outputs = StripedBuf::new(prog.n_outputs(), strip_len, blocksize);
        let data_bytes = strip_len * prog.n_inputs();
        BenchRunner {
            prog,
            inputs,
            outputs,
            data_bytes,
        }
    }

    /// Run `reps` iterations (after `warmup` unmeasured ones) and return
    /// the throughput in GB/s.
    fn run_timed(&mut self, warmup: usize, reps: usize) -> f64 {
        let strip_len = self.inputs.strip_len();
        let mut arena = self.prog.make_arena(strip_len);
        let ins: Vec<&[u8]> = self.inputs.all();
        let mut outs: Vec<&mut [u8]> = self.outputs.all_mut();
        for _ in 0..warmup {
            self.prog
                .run_with_arena(&ins, &mut outs, &mut arena)
                .expect("bench program runs");
        }
        let t = Instant::now();
        for _ in 0..reps.max(1) {
            self.prog
                .run_with_arena(&ins, &mut outs, &mut arena)
                .expect("bench program runs");
        }
        self.data_bytes as f64 * reps.max(1) as f64 / t.elapsed().as_secs_f64() / 1e9
    }

    /// Run once (warm-up / correctness smoke).
    pub fn run_once(&mut self) {
        self.run_timed(0, 1);
    }

    /// Measure throughput in GB/s over `reps` repetitions.
    pub fn throughput(&mut self, reps: usize) -> f64 {
        self.run_timed(3, reps)
    }
}

/// Time a closure: 3 unmeasured warm-up calls (grow arenas/caches to
/// steady state), then `reps` measured calls; returns seconds per call.
///
/// The one timing discipline shared by the plain-main bench bins —
/// change warm-up or clamping here, not per binary.
pub fn time_per_rep(reps: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..3 {
        f();
    }
    let reps = reps.max(1);
    let t = Instant::now();
    for _ in 0..reps {
        f();
    }
    t.elapsed().as_secs_f64() / reps as f64
}

/// Pretty horizontal rule for table output.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}

/// Environment header printed by every table binary.
pub fn print_env_header(experiment: &str) {
    println!("== {experiment}");
    println!(
        "machine: {} | kernel {} | {} MB workload, {} reps",
        std::env::consts::ARCH,
        Kernel::Auto.resolve().name(),
        workload_bytes() / 1_000_000,
        reps(),
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_enumeration_counts() {
        // RS(10,4): 1001 total patterns, 1000 lose at least one data shard.
        assert_eq!(decode_patterns(10, 4).len(), 1000);
        assert_eq!(decode_patterns(4, 2).len(), 14); // C(6,2)=15 minus parity-only
    }

    #[test]
    fn base_slps_have_paper_sizes() {
        assert_eq!(enc_base_slp(10, 4).xor_count(), 755);
        assert_eq!(dec_base_slp(10, 4, &[2, 4, 5, 6]).xor_count(), 1368);
    }

    #[test]
    fn bench_runner_smoke() {
        let slp = enc_base_slp(4, 2);
        let mut r = BenchRunner::new(&slp, 1024, Kernel::Auto, 1 << 20);
        r.run_once();
        let gbps = r.throughput(2);
        assert!(gbps > 0.0);
    }
}
