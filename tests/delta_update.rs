//! Delta parity updates and partial repair, end to end through the
//! façade: the update identity, the partial-program cache, and the
//! proportional-repair guarantees — under every engine configuration the
//! CI matrix forces via `XORSLP_KERNEL` / `XORSLP_PARALLELISM`.

use xorslp_ec::{ArrayCodec, EcError, RsCodec, RsConfig};

fn sample(len: usize, seed: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 167 + seed * 89 + 5) as u8).collect()
}

fn encode_parity(codec: &RsCodec, data: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let len = data[0].len();
    let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
    let mut parity = vec![vec![0u8; len]; codec.parity_shards()];
    {
        let mut prefs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
        codec.encode_parity(&refs, &mut prefs).unwrap();
    }
    parity
}

#[test]
fn rmw_workload_stays_consistent_over_many_updates() {
    // A read-modify-write stream: 40 single-shard writes, parity kept
    // fresh purely by delta updates, checked against full re-encode and
    // by decoding after erasures.
    let codec = RsCodec::new(8, 3).unwrap();
    let shard_len = 8 * 24;
    let mut data: Vec<Vec<u8>> = (0..8).map(|k| sample(shard_len, k)).collect();
    let mut parity = encode_parity(&codec, &data);

    for round in 0..40 {
        let i = (round * 5 + 3) % 8;
        let new_shard = sample(shard_len, 1000 + round);
        {
            let mut prefs: Vec<&mut [u8]> =
                parity.iter_mut().map(Vec::as_mut_slice).collect();
            codec
                .update_parity(i, &data[i], &new_shard, &mut prefs)
                .unwrap();
        }
        data[i] = new_shard;
    }
    assert_eq!(parity, encode_parity(&codec, &data), "delta drift after 40 writes");

    // The delta-maintained stripe decodes like a freshly encoded one.
    let mut received: Vec<Option<Vec<u8>>> = data
        .iter()
        .chain(parity.iter())
        .cloned()
        .map(Some)
        .collect();
    received[0] = None;
    received[6] = None;
    received[9] = None; // one parity too
    let flat: Vec<u8> = data.concat();
    assert_eq!(codec.decode(&received, flat.len()).unwrap(), flat);
}

#[test]
fn update_is_strictly_cheaper_and_bench_invariant_holds() {
    // The headline acceptance criterion, visible through the façade: a
    // one-shard update executes strictly fewer XOR instructions than the
    // full encode, for every column, and so does every proper row subset.
    let codec = RsCodec::new(10, 4).unwrap();
    let full = codec.encode_slp().xor_count();
    for i in 0..10 {
        assert!(codec.update_slp(i).unwrap().xor_count() < full, "column {i}");
    }
    for r in 0..4 {
        assert!(
            codec.partial_encode_slp(&[r]).unwrap().xor_count() < full,
            "row {r}"
        );
    }
    // The full row set *is* the encode program (no duplicate compile).
    assert_eq!(
        codec.partial_encode_slp(&[0, 1, 2, 3]).unwrap().xor_count(),
        full
    );
}

#[test]
fn partial_cache_evicts_lru_and_stays_bounded() {
    let codec = RsCodec::with_config(RsConfig::new(6, 3).partial_cache_cap(2)).unwrap();
    assert_eq!(codec.partial_cache_capacity(), 2);
    let shard_len = 16;
    let data: Vec<Vec<u8>> = (0..6).map(|k| sample(shard_len, k)).collect();
    let mut parity = encode_parity(&codec, &data);
    // Touch more distinct columns than the cache holds.
    for (i, shard) in data.iter().enumerate() {
        let new_shard = sample(shard_len, 50 + i);
        {
            let mut prefs: Vec<&mut [u8]> =
                parity.iter_mut().map(Vec::as_mut_slice).collect();
            codec.update_parity(i, shard, &new_shard, &mut prefs).unwrap();
            // undo, so the stripe stays consistent while we churn
            codec.update_parity(i, &new_shard, shard, &mut prefs).unwrap();
        }
        assert!(codec.partial_cache_len() <= 2, "cache exceeded its cap");
    }
    assert_eq!(parity, encode_parity(&codec, &data));
}

#[test]
fn reconstruct_single_parity_is_proportional() {
    // Losing one parity shard compiles exactly the one-row program; the
    // other p − 1 shards are never produced.
    let codec = RsCodec::new(6, 3).unwrap();
    let data = sample(6 * 40, 7);
    let shards = codec.encode(&data).unwrap();
    let mut received: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
    received[8] = None; // parity row 2
    codec.reconstruct(&mut received).unwrap();
    assert_eq!(received[8].as_ref().unwrap(), &shards[8]);
    assert_eq!(codec.partial_cache_len(), 1, "exactly the one-row program cached");
    let one_row = codec.partial_encode_slp(&[2]).unwrap();
    assert!(one_row.xor_count() < codec.encode_slp().xor_count());
}

#[test]
fn zero_length_and_unaligned_shards() {
    let codec = RsCodec::new(4, 2).unwrap();
    // Zero-length: a no-op on every path.
    let empty: Vec<u8> = Vec::new();
    let mut parity = [Vec::new(), Vec::new()];
    {
        let mut prefs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
        codec.update_parity(0, &empty, &empty, &mut prefs).unwrap();
    }
    let data: Vec<Vec<u8>> = vec![Vec::new(); 4];
    let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
    let mut one = [Vec::new()];
    {
        let mut orefs: Vec<&mut [u8]> = one.iter_mut().map(Vec::as_mut_slice).collect();
        codec.encode_parity_partial(&refs, &mut orefs, &[1]).unwrap();
    }
    // Unaligned lengths error, as on the full-encode path.
    let odd = vec![0u8; 9];
    let mut odd_parity = [vec![0u8; 9], vec![0u8; 9]];
    let mut oprefs: Vec<&mut [u8]> = odd_parity.iter_mut().map(Vec::as_mut_slice).collect();
    assert!(matches!(
        codec.update_parity(0, &odd, &odd, &mut oprefs),
        Err(EcError::ShardLength(_))
    ));
}

#[test]
fn parity_only_decode_slp_is_typed() {
    let codec = RsCodec::new(4, 2).unwrap();
    assert!(matches!(codec.decode_slp(&[4]), Err(EcError::NoDataLost)));
    assert!(matches!(codec.decode_slp(&[5, 4]), Err(EcError::NoDataLost)));
    // A data loss still returns a program; an out-of-range index is
    // still a caller error.
    assert!(codec.decode_slp(&[0]).is_ok());
    assert!(matches!(codec.decode_slp(&[6]), Err(EcError::InvalidParams(_))));
}

#[test]
fn array_codec_delta_updates_mirror_rs() {
    for codec in [ArrayCodec::evenodd(4), ArrayCodec::rdp(4)] {
        let k = codec.data_shards();
        let data = sample(k * codec.symbols_per_shard() * 8, 3);
        let shards = codec.encode(&data).unwrap();
        let shard_len = shards[0].len();

        let disk = k / 2;
        let mut new_bytes = data.clone();
        for b in new_bytes[disk * shard_len..(disk + 1) * shard_len].iter_mut() {
            *b ^= 0x3C;
        }
        let expected = codec.encode(&new_bytes).unwrap();

        let mut parity: Vec<Vec<u8>> = shards[k..].to_vec();
        {
            let mut prefs: Vec<&mut [u8]> =
                parity.iter_mut().map(Vec::as_mut_slice).collect();
            codec
                .update_parity(disk, &shards[disk], &expected[disk], &mut prefs)
                .unwrap();
        }
        assert_eq!(&parity[..], &expected[k..], "{}", codec.name());
        assert!(
            codec.update_slp(disk).unwrap().xor_count() < codec.encode_slp().xor_count(),
            "{} delta program must be cheaper",
            codec.name()
        );
    }
}
