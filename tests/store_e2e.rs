//! The acceptance scenario of the `ec-store` subsystem, end to end over
//! real sockets: an RS(10, 4) cluster of 14 loopback nodes where
//! killing any 4 nodes still serves correct degraded `get`s, `repair`
//! restores a fully-healthy `scrub`, and a delta `overwrite` is
//! provably cheaper than a full re-put (SLP metrics + partial-program
//! cache introspection).

use xorslp_ec::store::{Cluster, NodeHandle, OverwriteMode};
use xorslp_ec::RsConfig;
use std::path::PathBuf;
use std::time::Duration;

const N: usize = 10;
const P: usize = 4;

struct Fixture {
    root: PathBuf,
    nodes: Vec<Option<NodeHandle>>,
    addrs: Vec<String>,
}

impl Fixture {
    fn spawn(tag: &str) -> Fixture {
        let root = std::env::temp_dir().join(format!(
            "ec_store_e2e_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let nodes: Vec<Option<NodeHandle>> = (0..N + P)
            .map(|i| {
                Some(
                    NodeHandle::spawn(&root.join(format!("node{i}")), "127.0.0.1:0", 2)
                        .expect("spawn node"),
                )
            })
            .collect();
        let addrs = nodes
            .iter()
            .map(|n| n.as_ref().unwrap().addr().to_string())
            .collect();
        Fixture { root, nodes, addrs }
    }

    fn cluster(&self) -> Cluster {
        Cluster::new(self.addrs.clone(), RsConfig::new(N, P))
            .unwrap()
            .with_timeout(Duration::from_secs(5))
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        for node in self.nodes.iter_mut().filter_map(Option::take) {
            node.shutdown();
        }
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn payload(len: usize, seed: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 31 + seed * 131 + i / 11) % 251) as u8).collect()
}

/// Kill-4 patterns spanning the interesting shapes: all-parity,
/// all-data, mixed, the paper's §7.5 decode pattern, and a spread.
const KILL_PATTERNS: [[usize; 4]; 5] = [
    [10, 11, 12, 13], // every parity node
    [0, 1, 2, 3],     // four data nodes
    [2, 5, 11, 13],   // mixed (the storage_cluster example's rack)
    [2, 4, 5, 6],     // the paper's P_dec erasure pattern
    [0, 4, 9, 12],    // spread
];

#[test]
fn rs_10_4_survives_any_four_dead_nodes_and_repairs() {
    let objects: Vec<(String, Vec<u8>)> = (0..3)
        .map(|k| (format!("obj-{k}"), payload(200_000 + 1237 * k, k)))
        .collect();

    for (case, dead_nodes) in KILL_PATTERNS.iter().enumerate() {
        let mut fx = Fixture::spawn(&format!("kill{case}"));
        let mut cluster = fx.cluster();
        for (name, data) in &objects {
            cluster.put(name, data).unwrap();
        }

        // Note: `dead_nodes` indexes the *node list*; which shards that
        // erases differs per object (rendezvous placement), so the five
        // patterns exercise many erasure patterns across the objects.
        for &i in dead_nodes {
            fx.nodes[i].take().expect("node alive").shutdown();
        }

        // Degraded reads: any 10 of 14 live nodes reconstruct exactly.
        for (name, data) in &objects {
            let got = cluster.get(name).unwrap_or_else(|e| {
                panic!("case {case}: degraded get({name}) failed: {e}")
            });
            assert_eq!(&got, data, "case {case}: degraded get({name})");
        }

        // Online repair: each dead node onto a fresh replacement.
        for &i in dead_nodes {
            let dead_addr = fx.addrs[i].clone();
            let dir = fx.root.join(format!("replacement{i}"));
            let node = NodeHandle::spawn(&dir, "127.0.0.1:0", 2).expect("replacement");
            let new_addr = node.addr().to_string();
            fx.nodes.push(Some(node));
            fx.addrs.push(new_addr.clone());
            let report = cluster.repair_node(&dead_addr, &new_addr).unwrap();
            assert!(
                report.failed.is_empty(),
                "case {case}: repair of node {i} failed: {:?}",
                report.failed
            );
        }

        // The cluster is fully healthy again: clean scrub (per-shard
        // CRCs and chunk-wise parity consistency) and non-degraded,
        // byte-exact reads.
        let scrub = cluster.scrub().unwrap();
        assert!(scrub.clean(), "case {case}: scrub after repair: {scrub:?}");
        for (name, data) in &objects {
            let (got, report) = cluster.get_with_report(name).unwrap();
            assert_eq!(&got, data, "case {case}: post-repair get({name})");
            assert!(!report.degraded(), "case {case}: {name} still degraded");
        }
    }
}

#[test]
fn delta_overwrite_is_cheaper_than_full_reput() {
    let fx = Fixture::spawn("delta");
    let cluster = fx.cluster();
    let original = payload(500_000, 7);
    cluster.put("big", &original).unwrap();

    // Touch two shards' worth of bytes out of ten.
    let shard_len = cluster.codec().shard_len(original.len());
    let mut v2 = original.clone();
    v2[0] ^= 0xFF;
    v2[3 * shard_len + 100] ^= 0xFF;
    assert_eq!(cluster.codec().partial_cache_len(), 0, "no partial programs yet");
    let report = cluster.overwrite("big", &v2).unwrap();

    assert_eq!(report.mode, OverwriteMode::Delta);
    assert_eq!(report.changed, vec![0, 3]);
    assert_eq!(report.shards_written, 2 + P, "changed shards + parity, not n + p");
    // SLP metrics: the executed column programs cost strictly fewer
    // XORs than the full encode program a re-put would run.
    assert!(
        report.xor_count < report.full_xor_count,
        "delta {} XORs vs full {}",
        report.xor_count,
        report.full_xor_count
    );
    // Cache introspection: exactly the two column programs compiled.
    assert_eq!(cluster.codec().partial_cache_len(), 2);
    assert_eq!(cluster.get("big").unwrap(), v2);
}

#[test]
fn extra_nodes_spread_objects_beyond_n_plus_p() {
    // 16 nodes for n + p = 14: rendezvous placement uses different
    // 14-subsets per object, and everything still reads back.
    let root = std::env::temp_dir().join(format!("ec_store_e2e_spread_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let nodes: Vec<NodeHandle> = (0..16)
        .map(|i| NodeHandle::spawn(&root.join(format!("node{i}")), "127.0.0.1:0", 2).unwrap())
        .collect();
    let addrs: Vec<String> = nodes.iter().map(|n| n.addr().to_string()).collect();
    let cluster = Cluster::new(addrs, RsConfig::new(N, P))
        .unwrap()
        .with_timeout(Duration::from_secs(5));
    for k in 0..8 {
        let data = payload(10_000 + k, k);
        cluster.put(&format!("spread-{k}"), &data).unwrap();
        assert_eq!(cluster.get(&format!("spread-{k}")).unwrap(), data);
    }
    assert!(cluster.scrub().unwrap().clean());
    drop(nodes);
    let _ = std::fs::remove_dir_all(&root);
}
