//! Cross-crate integration tests through the public façade: the whole
//! pipeline from coding matrix to executed bytes.

use xorslp_ec::bits::BitMatrix;
use xorslp_ec::gf::{encoding_matrix, Gf, MatrixKind};
use xorslp_ec::opt::{self, OptConfig, StageMetrics};
use xorslp_ec::runtime::{ExecProgram, Kernel};
use xorslp_ec::slp::binary_slp_from_bitmatrix;
use xorslp_ec::{RsCodec, RsConfig};

fn sample(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 2_654_435_761usize) >> 7) as u8).collect()
}

#[test]
fn paper_metrics_table_7_5_encode() {
    // The §7.5 stage-by-stage numbers for P_enc that are architecture-
    // independent: #⊕, #M, NVar of the Base program are matched exactly;
    // compressed numbers use our deterministic tie-breaking and are
    // asserted as recorded in EXPERIMENTS.md.
    let matrix = encoding_matrix(MatrixKind::IsalPower, 10, 4);
    let rows: Vec<usize> = (10..14).collect();
    let bits = BitMatrix::expand_gf_matrix(&matrix.select_rows(&rows));
    let base = binary_slp_from_bitmatrix(&bits);

    let m = StageMetrics::of(&base);
    assert_eq!((m.xors, m.mem, m.nvar), (755, 2265, 32), "paper: 755/2265/32");

    let (co, _) = opt::xor_repair(&base);
    let fu = opt::fuse(&co);
    let dfs = opt::schedule_dfs(&fu);

    // Invariants the paper states for the pipeline:
    assert_eq!(fu.xor_count(), co.xor_count());
    assert_eq!(dfs.xor_count(), fu.xor_count());
    assert_eq!(dfs.mem_accesses(), fu.mem_accesses());
    assert!(co.xor_count() < base.xor_count());
    assert!(fu.mem_accesses() < co.mem_accesses());
    assert!(dfs.nvar() < fu.nvar());

    // Our heuristics are fully deterministic; pin their exact outputs.
    // Paper's values for comparison (§7.5): Co #⊕ = 385, Fu = 146 instrs
    // with #M = 677, Dfs NVar = 88 with CCap = 167. We land within a few
    // percent on each (and better on NVar); see EXPERIMENTS.md.
    assert_eq!(co.xor_count(), 389);
    assert_eq!(fu.instrs.len(), 152);
    assert_eq!(fu.mem_accesses(), 693);
    assert_eq!(dfs.nvar(), 82);
    // Note: the paper reports "#⊕" for fused programs as the instruction
    // count (146 = NVar); scalar XOR operations are invariant under
    // fusion and stay at the compressed count.
    assert_eq!(fu.xor_count(), co.xor_count());
}

#[test]
fn paper_metrics_table_7_5_decode() {
    // P_dec for the erasure {2,4,5,6}: Base matches the paper exactly
    // (1368 / 4104 / 32); the optimized stages are pinned (paper: Co 511,
    // Fu 206 instrs / #M 923, Dfs NVar 125 / CCap 205).
    let matrix = encoding_matrix(MatrixKind::IsalPower, 10, 4);
    let lost = [2usize, 4, 5, 6];
    let survivors: Vec<usize> = (0..14).filter(|i| !lost.contains(i)).collect();
    let inv = matrix.select_rows(&survivors[..10]).invert().unwrap();
    let rec = inv.select_rows(&lost);
    let base = binary_slp_from_bitmatrix(&BitMatrix::expand_gf_matrix(&rec));

    let m = StageMetrics::of(&base);
    assert_eq!((m.xors, m.mem, m.nvar), (1368, 4104, 32));

    let (co, _) = opt::xor_repair(&base);
    let fu = opt::fuse(&co);
    let dfs = opt::schedule_dfs(&fu);
    assert_eq!(co.xor_count(), 522);
    assert_eq!(fu.instrs.len(), 212);
    assert_eq!(fu.mem_accesses(), 946);
    assert_eq!(dfs.nvar(), 124);
    assert_eq!(base.eval(), dfs.eval());
}

#[test]
fn executed_bytes_equal_reference_for_all_stages() {
    let matrix = encoding_matrix(MatrixKind::IsalPower, 6, 3);
    let rows: Vec<usize> = (6..9).collect();
    let bits = BitMatrix::expand_gf_matrix(&matrix.select_rows(&rows));
    let base = binary_slp_from_bitmatrix(&bits);

    // 48 distinct packets, equal length (the executor requires it); mix
    // the packet index into the byte stream so no two inputs coincide.
    let inputs: Vec<Vec<u8>> = (0..48usize)
        .map(|k| {
            (0..1000)
                .map(|i| (((i + 97 * k) * 2_654_435_761usize) >> 7) as u8)
                .collect()
        })
        .collect();
    let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
    let expect = base.run_reference(&refs);

    for config in [OptConfig::BASE, OptConfig::COMPRESS, OptConfig::FUSE, OptConfig::FULL_DFS] {
        let optimized = opt::optimize(&base, config);
        let prog = ExecProgram::compile(&optimized, 256, Kernel::Auto);
        assert_eq!(prog.run_to_vecs(&refs).unwrap(), expect, "{config:?}");
    }
}

#[test]
fn xor_codec_and_baseline_codec_both_roundtrip() {
    let data = sample(8 * 4096 + 99);
    let xor = RsCodec::new(8, 3).unwrap();
    let gf = xorslp_ec::baseline::GfRsCodec::new(8, 3).unwrap();

    let xs = xor.encode(&data).unwrap();
    let gs = gf.encode(&data).unwrap();

    let mut xr: Vec<Option<Vec<u8>>> = xs.into_iter().map(Some).collect();
    let mut gr: Vec<Option<Vec<u8>>> = gs.into_iter().map(Some).collect();
    for i in [1, 6, 9] {
        xr[i] = None;
        gr[i] = None;
    }
    assert_eq!(xor.decode(&xr, data.len()).unwrap(), data);
    assert_eq!(gf.decode(&gr, data.len()).unwrap(), data);
}

#[test]
fn decode_slps_of_every_rs_10_4_pattern_are_sound() {
    // All 1001 erasure patterns: the decode SLP evaluates to the exact
    // GF-inverse rows (a full sweep of matrix → bit-matrix → SLP).
    let codec = RsCodec::with_config(RsConfig::new(10, 4).opt(OptConfig::BASE)).unwrap();
    let _matrix = codec.encode_matrix();
    let mut patterns = 0;
    for a in 0..14usize {
        for b in a + 1..14 {
            for c in b + 1..14 {
                for d in c + 1..14 {
                    let lost = [a, b, c, d];
                    let lost_data: Vec<usize> =
                        lost.iter().copied().filter(|&i| i < 10).collect();
                    if lost_data.is_empty() {
                        continue;
                    }
                    let slp = codec.decode_slp(&lost).unwrap();
                    // structural sanity: right shape, nonzero size
                    assert_eq!(slp.outputs.len(), 8 * lost_data.len());
                    assert!(slp.xor_count() > 0);
                    patterns += 1;
                }
            }
        }
    }
    assert_eq!(patterns, 1000, "1001 patterns minus the parity-only one");
    // …and the worst pattern matches the measured maximum (1416 XORs).
    let worst = codec.decode_slp(&[0, 2, 3, 9]).unwrap();
    assert_eq!(worst.xor_count(), 1416);
    // the paper's P_dec pattern:
    let paper = codec.decode_slp(&[2, 4, 5, 6]).unwrap();
    assert_eq!(paper.xor_count(), 1368);
}

#[test]
fn matrix_kinds_interoperate_with_all_opt_levels() {
    let data = sample(5 * 640);
    for kind in [MatrixKind::IsalPower, MatrixKind::ReducedVandermonde, MatrixKind::Cauchy] {
        let codec = RsCodec::with_config(
            RsConfig::new(5, 2).matrix(kind).blocksize(512),
        )
        .unwrap();
        let shards = codec.encode(&data).unwrap();
        assert!(codec.verify(&shards).unwrap());
        let mut rx: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        rx[3] = None;
        rx[5] = None;
        assert_eq!(codec.decode(&rx, data.len()).unwrap(), data, "{kind:?}");
    }
}

#[test]
fn companion_map_underpins_the_codec() {
    // A spot check that the algebra the codec rests on holds end to end:
    // 𝔅(x · y) = x̃ · 𝔅(y) for the matrix entries actually used.
    let matrix = encoding_matrix(MatrixKind::IsalPower, 4, 2);
    for r in 4..6 {
        for c in 0..4 {
            let x = matrix[(r, c)];
            let comp = xorslp_ec::bits::companion(x);
            for y in [0u8, 1, 7, 0x80, 0xFF] {
                let bits = xorslp_ec::bits::byte_to_bits(y);
                let out = comp.mul_vec(&bits);
                let got = xorslp_ec::bits::bits_to_byte(&out);
                assert_eq!(Gf(got), x * Gf(y));
            }
        }
    }
}

#[test]
fn large_object_throughput_smoke() {
    // 20 MiB object: mostly a check that nothing quadratic crept into the
    // hot path; also exercises arena reuse.
    let codec = RsCodec::new(10, 4).unwrap();
    let data = sample(20 * 1024 * 1024);
    let shards = codec.encode(&data).unwrap();
    let mut rx: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
    rx[2] = None;
    rx[4] = None;
    rx[5] = None;
    rx[6] = None;
    assert_eq!(codec.decode(&rx, data.len()).unwrap(), data);
}

#[test]
fn array_codes_ride_the_same_pipeline() {
    // EVENODD and RDP (the §7.6 specialized comparators) also encode and
    // decode correctly through the façade.
    let data = sample(5 * 4 * 30 + 7);
    let eo = xorslp_ec::arrays::ArrayCodec::evenodd(5);
    let rdp = xorslp_ec::arrays::ArrayCodec::rdp(4);
    for (name, codec) in [("evenodd", &eo), ("rdp", &rdp)] {
        let shards = codec.encode(&data).unwrap();
        let mut rx: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        rx[0] = None;
        rx[codec.total_shards() - 1] = None;
        assert_eq!(codec.decode(&rx, data.len()).unwrap(), data, "{name}");
    }
}
