//! Concurrency stress: one shared `RsCodec` hammered from many threads
//! with mixed encode / decode / reconstruct traffic.
//!
//! This locks in the parallel-engine refactor: the codec no longer owns
//! `Mutex<VarArena>` scratch state (workers own their arenas), so
//! concurrent callers must neither contend nor corrupt each other. Every
//! thread round-trips its own data and asserts bit-exactness; the decode
//! cache (a bounded LRU) is churned by rotating erasure patterns.

use std::thread;
use xorslp_ec::{RsCodec, RsConfig};

fn sample(seed: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 131 + seed * 97 + i / 7) % 256) as u8)
        .collect()
}

#[test]
fn concurrent_mixed_traffic_roundtrips() {
    let (n, p) = (6usize, 3usize);
    // Shared-pool codec (parallelism = auto) plus a deliberately small
    // decode cache so eviction happens *during* the hammering.
    let codec = RsCodec::with_config(RsConfig::new(n, p).decode_cache_cap(4)).unwrap();
    let erasure_menu: [&[usize]; 6] = [
        &[0],          // single data loss
        &[7],          // single parity loss
        &[1, 4],       // double data
        &[2, 8],       // data + parity
        &[6, 7, 8],    // all parity
        &[0, 3, 5],    // triple data (max erasures)
    ];

    thread::scope(|s| {
        for t in 0..8usize {
            let codec = &codec;
            let erasure_menu = &erasure_menu;
            s.spawn(move || {
                for i in 0..10usize {
                    let len = n * 64 * (1 + (t + i) % 3) + (t * 13 + i * 7) % 41;
                    let data = sample(t * 1000 + i, len);

                    // encode (through the shared pool) and verify parity
                    let shards = codec.encode(&data).unwrap();
                    assert!(codec.verify(&shards).unwrap(), "t{t} i{i} verify");

                    // explicit-stripe-count encode agrees bit-for-bit
                    let shard_len = shards[0].len();
                    let data_refs: Vec<&[u8]> =
                        shards[..n].iter().map(Vec::as_slice).collect();
                    let mut parity = vec![vec![0u8; shard_len]; p];
                    {
                        let mut refs: Vec<&mut [u8]> =
                            parity.iter_mut().map(Vec::as_mut_slice).collect();
                        codec
                            .encode_parity_mt(&data_refs, &mut refs, 1 + (t + i) % 4)
                            .unwrap();
                    }
                    assert_eq!(&parity[..], &shards[n..], "t{t} i{i} mt encode");

                    // decode with a rotating erasure pattern
                    let lost = erasure_menu[(t + i) % erasure_menu.len()];
                    let mut received: Vec<Option<Vec<u8>>> =
                        shards.iter().cloned().map(Some).collect();
                    for &l in lost {
                        received[l] = None;
                    }
                    assert_eq!(
                        codec.decode(&received, data.len()).unwrap(),
                        data,
                        "t{t} i{i} decode {lost:?}"
                    );

                    // reconstruct rebuilds every lost shard in place
                    codec.reconstruct(&mut received).unwrap();
                    for (j, shard) in received.iter().enumerate() {
                        assert_eq!(
                            shard.as_ref().unwrap(),
                            &shards[j],
                            "t{t} i{i} reconstruct shard {j}"
                        );
                    }
                }
            });
        }
    });

    // The LRU bound held under concurrent churn.
    assert!(codec.decode_cache_len() <= 4);
}
