//! Integration suite of the streaming archive subsystem: loss,
//! truncation and bit-flip scenarios against real files on disk.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use xorslp_ec::stream::{shard_file_name, Archive, ShardState, StreamError, HEADER_LEN};

/// A unique scratch directory per test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "xorslp_archive_test_{}_{tag}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn sample(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 131 + i / 7 + 5) as u8).collect()
}

/// Create a multi-chunk archive and return (scratch, input path, dir).
fn setup(tag: &str, len: usize, n: usize, p: usize, chunk: usize) -> (Scratch, PathBuf, PathBuf) {
    let s = Scratch::new(tag);
    let input = s.path("input.bin");
    fs::write(&input, sample(len)).unwrap();
    let dir = s.path("shards");
    Archive::create(&input, &dir, n, p, chunk).unwrap();
    (s, input, dir)
}

fn assert_extract_identical(dir: &Path, input: &Path, out_name: &str) {
    let archive = Archive::open(dir).unwrap();
    let out = dir.join(out_name);
    archive.extract(&out).unwrap();
    assert_eq!(fs::read(input).unwrap(), fs::read(&out).unwrap());
    fs::remove_file(out).unwrap();
}

#[test]
fn roundtrip_and_self_description() {
    // Unaligned length, tail chunk smaller than the others.
    let (_s, input, dir) = setup("roundtrip", 5 * 64 * 1024 + 12347, 6, 3, 64 * 1024);
    let archive = Archive::open(&dir).unwrap();
    let m = archive.meta();
    assert_eq!((m.data_shards, m.parity_shards), (6, 3));
    assert_eq!(m.original_len, 5 * 64 * 1024 + 12347);
    assert_eq!(m.chunk_count, 6);
    assert!(archive.verify().unwrap().all_ok());
    assert!(archive.scrub().unwrap().clean());
    assert_extract_identical(&dir, &input, "restored.bin");
}

#[test]
fn survives_loss_of_any_p_shard_files() {
    let (_s, input, dir) = setup("losses", 4 * 4096 * 2 + 99, 4, 2, 4 * 4096);
    let pristine: Vec<Vec<u8>> =
        (0..6).map(|i| fs::read(dir.join(shard_file_name(i))).unwrap()).collect();
    for a in 0..6 {
        for b in a + 1..6 {
            fs::remove_file(dir.join(shard_file_name(a))).unwrap();
            fs::remove_file(dir.join(shard_file_name(b))).unwrap();

            // Extraction works from the survivors alone…
            assert_extract_identical(&dir, &input, "restored.bin");

            // …and repair restores the exact original shard files.
            let archive = Archive::open(&dir).unwrap();
            let report = archive.verify().unwrap();
            assert_eq!(report.damaged(), vec![a, b], "lost {a},{b}");
            assert_eq!(report.shards[a], ShardState::Missing);
            let rep = archive.repair().unwrap();
            assert_eq!(rep.repaired, vec![a, b]);
            assert!(archive.verify().unwrap().all_ok(), "after repair of {a},{b}");
            for (i, want) in pristine.iter().enumerate() {
                assert_eq!(
                    &fs::read(dir.join(shard_file_name(i))).unwrap(),
                    want,
                    "shard {i} after losing {a},{b}"
                );
            }
        }
    }
}

#[test]
fn truncation_is_flagged_and_repaired() {
    let (_s, input, dir) = setup("truncate", 3 * 8192 + 17, 3, 2, 8192);
    let victim = dir.join(shard_file_name(1));
    let pristine = fs::read(&victim).unwrap();
    // Cut the file mid-frame.
    let f = fs::OpenOptions::new().write(true).open(&victim).unwrap();
    f.set_len(pristine.len() as u64 - (pristine.len() as u64 - HEADER_LEN as u64) / 2)
        .unwrap();
    drop(f);

    let archive = Archive::open(&dir).unwrap();
    let report = archive.verify().unwrap();
    assert_eq!(report.damaged(), vec![1]);
    assert!(
        matches!(report.shards[1], ShardState::WrongLength { .. }),
        "{:?}",
        report.shards[1]
    );
    // The truncated shard's surviving leading chunks are still used as
    // sources; repair rebuilds only what is actually gone.
    archive.repair().unwrap();
    assert_eq!(fs::read(&victim).unwrap(), pristine);
    assert!(archive.verify().unwrap().all_ok());
    assert_extract_identical(&dir, &input, "restored.bin");
}

#[test]
fn payload_bit_flip_is_flagged_per_chunk_and_repaired() {
    let (_s, input, dir) = setup("bitflip", 4 * 2048 * 3 + 100, 4, 2, 4 * 2048);
    let archive = Archive::open(&dir).unwrap();
    let m = *archive.meta();
    assert_eq!(m.chunk_count, 4);
    let victim = dir.join(shard_file_name(5));
    let pristine = fs::read(&victim).unwrap();

    // Flip one byte in chunk 2's payload of parity shard 5.
    let offset: usize =
        HEADER_LEN + 2 * (m.slice_len(0) + 4) + m.slice_len(2) / 2;
    let mut bytes = pristine.clone();
    bytes[offset] ^= 0x01;
    fs::write(&victim, &bytes).unwrap();

    let report = archive.verify().unwrap();
    assert_eq!(report.damaged(), vec![5]);
    assert_eq!(report.shards[5], ShardState::Corrupt { chunks: vec![2] });
    // Scrub agrees and reports no CRC-evading inconsistency.
    let scrub = archive.scrub().unwrap();
    assert!(!scrub.clean());
    assert!(scrub.inconsistent_chunks.is_empty());

    let rep = archive.repair().unwrap();
    assert_eq!(rep.repaired, vec![5]);
    assert_eq!(rep.chunks_rebuilt, 1, "only the flipped chunk reconstructs");
    assert_eq!(fs::read(&victim).unwrap(), pristine);
    assert_extract_identical(&dir, &input, "restored.bin");
}

#[test]
fn header_corruption_is_flagged_and_repaired() {
    let (_s, input, dir) = setup("header", 2 * 4096 + 5, 4, 2, 4096);
    let victim = dir.join(shard_file_name(0));
    let pristine = fs::read(&victim).unwrap();
    let mut bytes = pristine.clone();
    bytes[12] ^= 0xFF; // n field — CRC catches it
    fs::write(&victim, &bytes).unwrap();

    let archive = Archive::open(&dir).unwrap();
    let m = archive.meta();
    assert_eq!((m.data_shards, m.parity_shards), (4, 2), "majority vote wins");
    let report = archive.verify().unwrap();
    assert_eq!(report.shards[0], ShardState::BadHeader);
    archive.repair().unwrap();
    assert_eq!(fs::read(&victim).unwrap(), pristine);
    assert_extract_identical(&dir, &input, "restored.bin");
}

#[test]
fn single_parity_loss_repairs_via_row_subset_program() {
    let (_s, _input, dir) = setup("partial", 6 * 1024 * 2, 6, 3, 6 * 1024);
    fs::remove_file(dir.join(shard_file_name(7))).unwrap(); // parity row 1

    let archive = Archive::open(&dir).unwrap();
    assert_eq!(archive.codec().partial_cache_len(), 0);
    archive.repair().unwrap();
    // The repair compiled exactly one partial (row-subset) program —
    // the PR-3 path — instead of the full p-row encode.
    assert_eq!(archive.codec().partial_cache_len(), 1);
    assert!(archive.verify().unwrap().all_ok());
}

#[test]
fn more_than_p_losses_is_a_typed_error() {
    let (_s, _input, dir) = setup("toomany", 4 * 1024, 4, 2, 1024);
    for i in [0, 2, 5] {
        fs::remove_file(dir.join(shard_file_name(i))).unwrap();
    }
    let archive = Archive::open(&dir).unwrap();
    assert!(matches!(
        archive.repair(),
        Err(StreamError::TooDamaged { missing: 3, parity: 2, .. })
    ));
    assert!(matches!(
        archive.extract(&dir.join("out.bin")),
        Err(StreamError::TooDamaged { .. })
    ));
    // No half-written repair artifacts left behind.
    assert!(fs::read_dir(&dir)
        .unwrap()
        .all(|e| !e.unwrap().file_name().to_string_lossy().ends_with(".tmp")));
}

#[test]
fn create_is_safe_against_typos_and_stale_shards() {
    // A failed create (mistyped input path) must not touch an existing
    // archive in the target directory.
    let (_s, input, dir) = setup("createsafe", 4096, 2, 2, 1024);
    let pristine: Vec<Vec<u8>> =
        (0..4).map(|i| fs::read(dir.join(shard_file_name(i))).unwrap()).collect();
    assert!(Archive::create(&dir.join("no-such-input.bin"), &dir, 2, 2, 1024).is_err());
    for (i, want) in pristine.iter().enumerate() {
        assert_eq!(
            &fs::read(dir.join(shard_file_name(i))).unwrap(),
            want,
            "shard {i} touched by failed create"
        );
    }
    // Re-creating with a smaller shard count removes the stale tail
    // files, so the directory holds exactly one archive afterwards.
    Archive::create(&input, &dir, 2, 1, 2048).unwrap();
    assert!(!dir.join(shard_file_name(3)).exists(), "stale shard left behind");
    let archive = Archive::open(&dir).unwrap();
    assert_eq!(archive.meta().total_shards(), 3);
    assert!(archive.verify().unwrap().all_ok());
}

#[test]
fn mixed_generation_tie_is_refused_not_guessed() {
    // Two archives with equal shard counts interleaved in one directory:
    // open() must refuse the 2-vs-2 header tie instead of picking a side
    // (repairing under the wrong metadata would destroy good shards).
    let (_s, _input, dir) = setup("tie", 4096, 2, 2, 1024);
    let s2 = Scratch::new("tie_other");
    let input2 = s2.path("other.bin");
    fs::write(&input2, sample(8000)).unwrap();
    let dir2 = s2.path("shards");
    Archive::create(&input2, &dir2, 2, 2, 2048).unwrap();
    for i in 0..2 {
        fs::copy(dir2.join(shard_file_name(i)), dir.join(shard_file_name(i))).unwrap();
    }
    match Archive::open(&dir) {
        Err(StreamError::Format(msg)) => assert!(msg.contains("ambiguous"), "{msg}"),
        other => panic!("expected ambiguity error, got {:?}", other.map(|a| *a.meta())),
    }
    // A 3-vs-1 split is damage, not ambiguity: majority wins.
    fs::copy(dir2.join(shard_file_name(2)), dir.join(shard_file_name(2))).unwrap();
    let archive = Archive::open(&dir).unwrap();
    assert_eq!(archive.meta().chunk_size, 2048);
}

#[test]
fn empty_file_archives_and_restores() {
    let (_s, input, dir) = setup("empty", 0, 4, 2, 4096);
    let archive = Archive::open(&dir).unwrap();
    assert_eq!(archive.meta().chunk_count, 0);
    assert!(archive.verify().unwrap().all_ok());
    assert!(archive.scrub().unwrap().clean());
    assert_extract_identical(&dir, &input, "restored.bin");
}

#[test]
fn damage_across_different_shards_in_different_chunks_repairs() {
    // Corruption budget is per *chunk*, not per archive: with p = 1,
    // two different shards damaged in two different chunks still repair.
    let (_s, input, dir) = setup("disjoint", 3 * 1024 * 4, 3, 1, 3 * 1024);
    let m = *Archive::open(&dir).unwrap().meta();
    assert_eq!(m.chunk_count, 4);
    let frame = m.slice_len(0) + 4;
    // shard 0 bad in chunk 1, shard 2 bad in chunk 3.
    for (shard, chunk) in [(0usize, 1usize), (2, 3)] {
        let path = dir.join(shard_file_name(shard));
        let mut bytes = fs::read(&path).unwrap();
        bytes[HEADER_LEN + chunk * frame + 7] ^= 0x20;
        fs::write(&path, bytes).unwrap();
    }
    let archive = Archive::open(&dir).unwrap();
    assert_eq!(archive.verify().unwrap().damaged(), vec![0, 2]);
    let rep = archive.repair().unwrap();
    assert_eq!(rep.repaired, vec![0, 2]);
    assert_eq!(rep.chunks_rebuilt, 2);
    assert!(archive.verify().unwrap().all_ok());
    assert_extract_identical(&dir, &input, "restored.bin");
}
