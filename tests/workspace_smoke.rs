//! Workspace smoke test: one fast, deterministic encode → erase → decode
//! roundtrip on the headline RS(10, 4) configuration, so tier-1 has a
//! quick signal that the whole pipeline (gf256 → bitmatrix → slp →
//! optimizer → runtime → codec) hangs together, independent of the
//! heavier property tests.

use xorslp_ec::RsCodec;

#[test]
fn rs_10_4_roundtrip_byte_for_byte() {
    let codec = RsCodec::new(10, 4).expect("RS(10,4) is a valid shape");
    assert_eq!(codec.data_shards(), 10);
    assert_eq!(codec.parity_shards(), 4);
    assert_eq!(codec.total_shards(), 14);

    // Deterministic, non-trivial payload; length not a multiple of the
    // shard count so padding handling is exercised too.
    let data: Vec<u8> = (0..123_457u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
        .collect();

    let shards = codec.encode(&data).expect("encode");
    assert_eq!(shards.len(), 14);

    // Erase the maximum tolerable number of shards: 4, mixing data (2, 6)
    // and parity (10, 13).
    let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
    for lost in [2, 6, 10, 13] {
        received[lost] = None;
    }

    let restored = codec.decode(&received, data.len()).expect("decode");
    assert_eq!(restored, data, "roundtrip must be byte-for-byte");
}
