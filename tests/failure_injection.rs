//! Failure-injection tests: the library must fail loudly and precisely,
//! never corrupt data silently.

use xorslp_ec::{EcError, Kernel, OptConfig, RsCodec, RsConfig};

fn sample(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 37 + 11) as u8).collect()
}

#[test]
fn rejects_all_invalid_parameter_combinations() {
    assert!(matches!(RsCodec::new(0, 4), Err(EcError::InvalidParams(_))));
    assert!(matches!(RsCodec::new(4, 0), Err(EcError::InvalidParams(_))));
    assert!(matches!(RsCodec::new(128, 128), Err(EcError::InvalidParams(_))));
    assert!(matches!(
        RsCodec::with_config(RsConfig::new(4, 2).blocksize(0)),
        Err(EcError::InvalidParams(_))
    ));
}

#[test]
fn detects_too_many_erasures_before_touching_data() {
    let codec = RsCodec::new(4, 2).unwrap();
    let shards = codec.encode(&sample(1024)).unwrap();
    let mut rx: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
    rx[0] = None;
    rx[2] = None;
    rx[4] = None;
    match codec.decode(&rx, 1024) {
        Err(EcError::TooManyErasures { missing: 3, parity: 2 }) => {}
        other => panic!("expected TooManyErasures, got {other:?}"),
    }
}

#[test]
fn detects_wrong_shard_count() {
    let codec = RsCodec::new(4, 2).unwrap();
    let err = codec.decode(&[None, None, None], 0).unwrap_err();
    assert!(matches!(err, EcError::ShardCount { expected: 6, got: 3 }));
}

#[test]
fn detects_inconsistent_shard_lengths() {
    let codec = RsCodec::new(3, 2).unwrap();
    let shards = codec.encode(&sample(999)).unwrap();
    let mut rx: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
    rx[1].as_mut().unwrap().pop(); // truncate one shard
    assert!(matches!(codec.decode(&rx, 999), Err(EcError::ShardLength(_))));
}

#[test]
fn detects_data_len_exceeding_shards() {
    let codec = RsCodec::new(4, 2).unwrap();
    let data = sample(640);
    let shards = codec.encode(&data).unwrap();
    let rx: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
    // claim the object was bigger than the shards can hold
    assert!(matches!(
        codec.decode(&rx, 10_000),
        Err(EcError::ShardLength(_))
    ));
}

#[test]
fn verify_catches_corruption() {
    let codec = RsCodec::new(4, 2).unwrap();
    let data = sample(4 * 512);
    let mut shards = codec.encode(&data).unwrap();
    assert!(codec.verify(&shards).unwrap());
    shards[1][17] ^= 0x40; // flip one bit in a data shard
    assert!(!codec.verify(&shards).unwrap(), "corruption must be detected");
}

#[test]
fn erased_index_out_of_range() {
    let codec = RsCodec::new(4, 2).unwrap();
    assert!(matches!(
        codec.decode_slp(&[7]),
        Err(EcError::InvalidParams(_))
    ));
}

#[test]
fn reconstruct_with_nothing_missing_is_a_noop() {
    let codec = RsCodec::new(4, 2).unwrap();
    let data = sample(4 * 128);
    let shards = codec.encode(&data).unwrap();
    let mut rx: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
    codec.reconstruct(&mut rx).unwrap();
    for (got, want) in rx.iter().zip(&shards) {
        assert_eq!(got.as_ref().unwrap(), want);
    }
}

#[test]
fn decode_under_every_kernel_and_blocksize_combination() {
    // Paranoia sweep: misaligned lengths, tiny blocks, scalar and SIMD.
    let data = sample(6 * 808); // 808 = 8 × 101: prime packet length
    for kernel in [Kernel::Scalar, Kernel::Wide64, Kernel::Auto] {
        for blocksize in [1usize, 13, 101, 1024] {
            let codec = RsCodec::with_config(
                RsConfig::new(6, 2)
                    .kernel(kernel)
                    .blocksize(blocksize)
                    .opt(OptConfig::FULL_DFS),
            )
            .unwrap();
            let shards = codec.encode(&data).unwrap();
            let mut rx: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
            rx[0] = None;
            rx[5] = None;
            assert_eq!(
                codec.decode(&rx, data.len()).unwrap(),
                data,
                "kernel {kernel:?} B={blocksize}"
            );
        }
    }
}

#[test]
fn zero_and_tiny_payloads() {
    let codec = RsCodec::new(3, 2).unwrap();
    for len in [0usize, 1, 2, 7, 8, 23, 24, 25] {
        let data = sample(len);
        let shards = codec.encode(&data).unwrap();
        let mut rx: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        rx[0] = None;
        if len > 0 {
            rx[4] = None;
        }
        assert_eq!(codec.decode(&rx, len).unwrap(), data, "len {len}");
    }
}
