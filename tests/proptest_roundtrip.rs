//! Facade-level property tests: random shapes, sizes, erasures, and
//! configurations all roundtrip.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Mutex;
use std::sync::OnceLock;
use xorslp_ec::{OptConfig, RsCodec, RsConfig};

type CodecCache = Mutex<HashMap<(usize, usize), std::sync::Arc<RsCodec>>>;

/// Codec construction involves the optimizer; cache instances per shape.
fn codec_for(n: usize, p: usize) -> std::sync::Arc<RsCodec> {
    static CACHE: OnceLock<CodecCache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = cache.lock().unwrap();
    guard
        .entry((n, p))
        .or_insert_with(|| {
            std::sync::Arc::new(
                RsCodec::with_config(RsConfig::new(n, p).blocksize(256)).unwrap(),
            )
        })
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_shape_random_erasures_roundtrip(
        n in 2usize..8,
        p in 1usize..4,
        data in proptest::collection::vec(any::<u8>(), 1..3000),
        seed in any::<u64>(),
    ) {
        let codec = codec_for(n, p);
        let shards = codec.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();

        // erase up to p pseudo-random shards
        let mut s = seed | 1;
        let erasures = (seed % (p as u64 + 1)) as usize;
        let mut erased = 0;
        while erased < erasures {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let idx = (s >> 33) as usize % (n + p);
            if received[idx].is_some() {
                received[idx] = None;
                erased += 1;
            }
        }
        prop_assert_eq!(codec.decode(&received, data.len()).unwrap(), data);
    }

    #[test]
    fn padding_is_always_stripped_exactly(
        n in 2usize..6,
        extra in 0usize..17,
        blocks in 0usize..4,
    ) {
        let p = 2;
        let codec = codec_for(n, p);
        let len = blocks * n * 8 + extra;
        let data: Vec<u8> = (0..len).map(|i| (i * 31) as u8).collect();
        let shards = codec.encode(&data).unwrap();
        let received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        prop_assert_eq!(codec.decode(&received, len).unwrap(), data);
    }

    #[test]
    fn base_and_full_opt_shards_are_identical(
        data in proptest::collection::vec(any::<u8>(), 1..1500),
    ) {
        static PAIR: OnceLock<(RsCodec, RsCodec)> = OnceLock::new();
        let (base, full) = PAIR.get_or_init(|| {
            (
                RsCodec::with_config(RsConfig::new(4, 3).opt(OptConfig::BASE).blocksize(128))
                    .unwrap(),
                RsCodec::with_config(RsConfig::new(4, 3).opt(OptConfig::FULL_DFS).blocksize(128))
                    .unwrap(),
            )
        });
        prop_assert_eq!(base.encode(&data).unwrap(), full.encode(&data).unwrap());
    }
}
